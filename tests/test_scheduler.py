"""The multi-query scheduler: coalescing, budgets, cancellation, fairness.

The heavyweight guarantee — serial equivalence at concurrency 1 for every
seeded backend combo — lives in ``test_backend_differential.py``; random
multi-query mixes live in ``test_scheduler_properties.py``.  This module
pins the rest of the contract:

* budgets (deadline, LM-call cap, result cap) are honoured at round
  boundaries, yield partial results, and set ``truncated``;
* a cancelled query never issues another LM call;
* :meth:`LogitsCache.logprobs_round` dedupes contexts colliding across a
  coalesced round down to one model dispatch, with exact per-query
  hit/miss attribution;
* the acceptance bar: 8 templated knowledge queries at ``--concurrency 8``
  issue at most 0.35x the model ``logprobs_batch`` rounds of 8 serial
  runs, with bit-identical per-query results;
* fairness policies decide who joins a capped round.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import prepare, search_many
from repro.core.executor import LmRequest
from repro.core.query import SearchQuery
from repro.core.scheduler import FAIRNESS_POLICIES, QueryBudget, QueryScheduler
from repro.lm.base import CountingModel, LanguageModel, LogitsCache

WIDE = "The ((cat)|(dog)|(man)|(woman))"


class FakeClock:
    """A manually-advanced monotonic clock for deterministic deadlines."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class SlowModel(LanguageModel):
    """Wraps a model so every LM dispatch costs *cost* fake seconds."""

    def __init__(self, inner: LanguageModel, clock: FakeClock, cost: float = 1.0) -> None:
        self.inner = inner
        self.clock = clock
        self.cost = cost
        self.vocab_size = inner.vocab_size
        self.eos_id = inner.eos_id
        self.max_sequence_length = inner.max_sequence_length
        self.batch_calls = 0

    def logprobs(self, context):
        self.clock.advance(self.cost)
        return self.inner.logprobs(context)

    def logprobs_batch(self, contexts):
        self.batch_calls += 1
        self.clock.advance(self.cost)
        return self.inner.logprobs_batch(contexts)


def _serial_matches(model, tokenizer, query, limit=200, **kwargs):
    matches = []
    for match in prepare(model, tokenizer, query, **kwargs):
        matches.append(match)
        if len(matches) >= limit:
            break
    return matches


class TestBudgets:
    def test_deadline_truncates_within_one_round(self, model, tokenizer):
        clock = FakeClock()
        slow = SlowModel(model, clock, cost=1.0)
        deep = "The ((man)|(woman)) was trained in ((art)|(medicine)|(engineering)|(computer science))"
        scheduler = QueryScheduler(slow, tokenizer, clock=clock)
        handle = scheduler.submit(
            SearchQuery(deep), budget=QueryBudget(deadline=2.5)
        )
        scheduler.run()
        assert handle.done and handle.truncated
        assert handle.truncated_reason == "deadline"
        # Budgets are checked at round boundaries: the overrun is bounded
        # by the cost of the single round in flight when the deadline hit.
        assert clock.now <= 2.5 + slow.cost
        assert handle.latency == clock.now
        # Partial results are a prefix of the serial stream.
        serial = _serial_matches(model, tokenizer, SearchQuery(deep))
        assert len(handle.results) < len(serial)
        for got, want in zip(handle.results, serial):
            assert got.text == want.text
            assert got.total_logprob == want.total_logprob

    def test_deadline_does_not_starve_peers(self, model, tokenizer):
        clock = FakeClock()
        slow = SlowModel(model, clock, cost=1.0)
        scheduler = QueryScheduler(slow, tokenizer, clock=clock)
        capped = scheduler.submit(
            SearchQuery(WIDE, seed=1), budget=QueryBudget(deadline=1.5)
        )
        free = scheduler.submit(SearchQuery(WIDE, seed=2))
        scheduler.run()
        assert capped.truncated and capped.truncated_reason == "deadline"
        assert free.done and not free.truncated
        serial = _serial_matches(model, tokenizer, SearchQuery(WIDE, seed=2))
        assert [m.text for m in free.results] == [m.text for m in serial]

    def test_max_lm_calls_is_never_exceeded(self, model, tokenizer):
        scheduler = QueryScheduler(model, tokenizer)
        handle = scheduler.submit(
            SearchQuery(WIDE), budget=QueryBudget(max_lm_calls=5)
        )
        scheduler.run()
        assert handle.truncated and handle.truncated_reason == "max_lm_calls"
        # The cap is a hard ceiling: a round that would cross it is not
        # issued at all (not issued-then-regretted).
        assert handle.stats.lm_calls <= 5

    def test_max_results_truncates_mid_advance(self, model, tokenizer):
        scheduler = QueryScheduler(model, tokenizer)
        handle = scheduler.submit(
            SearchQuery(WIDE), budget=QueryBudget(max_results=2)
        )
        scheduler.run()
        assert len(handle.results) == 2
        assert handle.truncated and handle.truncated_reason == "max_results"
        serial = _serial_matches(model, tokenizer, SearchQuery(WIDE), limit=2)
        assert [m.text for m in handle.results] == [m.text for m in serial]

    def test_unbudgeted_query_runs_to_completion(self, model, tokenizer):
        scheduler = QueryScheduler(model, tokenizer)
        handle = scheduler.submit(SearchQuery(WIDE))
        scheduler.run()
        assert handle.done and not handle.truncated
        assert handle.truncated_reason is None
        assert scheduler.stats.queries_completed == 1


class TestCancellation:
    def test_cancelled_query_issues_no_further_lm_calls(self, model, tokenizer):
        counting = CountingModel(model)
        scheduler = QueryScheduler(counting, tokenizer, record_history=True)
        victim = scheduler.submit(SearchQuery(WIDE, seed=1), name="victim")
        peer = scheduler.submit(SearchQuery(WIDE, seed=2), name="peer")
        assert scheduler.step()  # both queries join at least one round
        victim.cancel()
        calls_at_cancel = victim.stats.lm_calls
        results_at_cancel = len(victim.results)
        scheduler.run()
        assert victim.done and victim.truncated
        assert victim.truncated_reason == "cancelled"
        # Frozen exactly where it was cancelled: no later round included it.
        assert victim.stats.lm_calls == calls_at_cancel
        assert len(victim.results) == results_at_cancel
        assert all(names == ("peer",) for names in scheduler.stats.round_members[1:])
        assert peer.done and not peer.truncated
        assert scheduler.stats.queries_cancelled == 1

    def test_cancel_before_first_round(self, model, tokenizer):
        counting = CountingModel(model)
        scheduler = QueryScheduler(counting, tokenizer)
        handle = scheduler.submit(SearchQuery(WIDE))
        handle.cancel()
        scheduler.run()
        assert handle.done and handle.truncated_reason == "cancelled"
        assert handle.stats.lm_calls == 0
        assert counting.total_rounds == 0


class TestCoalescedRoundDedupe:
    """Regression: contexts colliding *across queries* within one coalesced
    round must be scored once, not once per requester."""

    def test_cross_group_collision_is_one_model_dispatch(self, model):
        counting = CountingModel(model)
        cache = LogitsCache(counting)
        groups = [[(1, 2), (3,)], [(1, 2), (4,)], [(3,), (1, 2)]]
        rows, hits, misses = cache.logprobs_round(groups)
        # (1,2) is requested by all three groups and (3,) by two, but the
        # round scores only the three unique contexts, in one dispatch.
        assert counting.batch_rounds == 1
        assert counting.contexts_scored == 3
        # First requester is charged the miss; later occurrences are hits.
        assert misses == [2, 1, 0]
        assert hits == [0, 1, 2]
        assert np.array_equal(rows[0][0], rows[1][0])
        assert np.array_equal(rows[0][0], rows[2][1])
        assert np.array_equal(rows[0][0], model.logprobs((1, 2)))

    def test_warm_round_issues_no_dispatch(self, model):
        counting = CountingModel(model)
        cache = LogitsCache(counting)
        cache.logprobs_round([[(1, 2)], [(3,)]])
        counting.reset()
        rows, hits, misses = cache.logprobs_round([[(1, 2)], [(3,)]])
        assert counting.total_rounds == 0
        assert hits == [1, 1] and misses == [0, 0]

    def test_within_batch_duplicates_deduped(self, model):
        counting = CountingModel(model)
        cache = LogitsCache(counting)
        rows = cache.logprobs_batch([(1, 2), (1, 2), (3,)])
        assert counting.batch_rounds == 1
        assert counting.contexts_scored == 2  # (1,2) scored once
        assert len(rows) == 3
        assert np.array_equal(rows[0], rows[1])

    def test_eviction_mid_round_keeps_rows_available(self, model):
        counting = CountingModel(model)
        cache = LogitsCache(counting, capacity=1)
        groups = [[(1,), (2,), (3,)], [(1,), (2,)]]
        rows, hits, misses = cache.logprobs_round(groups)
        # Capacity 1 evicts (1,) and (2,) before group 1 reads them, but
        # the round overlay still serves the scores it already paid for.
        assert counting.batch_rounds == 1
        assert counting.contexts_scored == 3
        assert misses == [3, 0]
        assert hits == [0, 2]
        assert np.array_equal(rows[0][0], rows[1][0])

    def test_precached_key_evicted_mid_round_served_from_snapshot(self, model):
        # Regression: a key cached *before* the round is not in the missing
        # set, so if this round's inserts LRU-evict it before it is read,
        # only the detection-pass snapshot can serve it (this used to raise
        # KeyError in the overlay, also breaking logprobs_batch).
        counting = CountingModel(model)
        cache = LogitsCache(counting, capacity=4)
        cache.logprobs((99,))
        counting.reset()
        rows, hits, misses = cache.logprobs_round(
            [[(0,), (1,), (2,), (3,), (4,), (5,), (99,)]]
        )
        # Only the six uncached contexts are scored; the pre-cached (99,) is
        # served from the snapshot and counts as a hit.
        assert counting.batch_rounds == 1
        assert counting.contexts_scored == 6
        assert misses == [6] and hits == [1]
        assert np.array_equal(rows[0][-1], model.logprobs((99,)))


class TestKnowledgeAcceptance:
    """The PR's acceptance bar: 8 templated knowledge queries at
    concurrency 8 issue <= 0.35x the model rounds of 8 serial runs, with
    per-query results bit-identical to serial execution."""

    TOP_N = 5

    def _queries(self):
        from repro.experiments.knowledge import (
            FACTS,
            birthdate_query,
            knowledge_world,
            month_query,
        )

        world = knowledge_world()
        # Two templated shapes per subject: the full Figure 1c date query
        # and a month-only variant — 4 subjects x 2 shapes = 8 queries.
        queries = [birthdate_query(subject) for subject, _ in FACTS]
        queries += [month_query(subject) for subject, _ in FACTS]
        return world, queries

    def test_coalesced_rounds_below_035x_serial(self):
        world, queries = self._queries()
        assert len(queries) == 8
        counting = CountingModel(world.model("xl"))

        serial_results = []
        for query in queries:
            # Fresh caches per serial run: each query pays its own rounds.
            serial_results.append(
                _serial_matches(
                    counting, world.tokenizer, query,
                    limit=self.TOP_N, compiler=world.compiler,
                )
            )
        serial_rounds = counting.batch_rounds
        assert serial_rounds > 0

        counting.reset()
        scheduler = QueryScheduler(counting, world.tokenizer,
                                   compiler=world.compiler, concurrency=8)
        handles = [
            scheduler.submit(q, budget=QueryBudget(max_results=self.TOP_N))
            for q in queries
        ]
        scheduler.run()
        coalesced_rounds = counting.batch_rounds

        ratio = coalesced_rounds / serial_rounds
        assert ratio <= 0.35, (coalesced_rounds, serial_rounds)
        # Bit-identical per-query results, not just "same matches".
        for handle, serial in zip(handles, serial_results):
            assert len(handle.results) == len(serial)
            for got, want in zip(handle.results, serial):
                assert got.text == want.text
                assert got.tokens == want.tokens
                assert got.logprob == want.logprob
                assert got.total_logprob == want.total_logprob

    def test_structured_query_batch_matches_single(self):
        from repro.experiments.knowledge import (
            FACTS,
            knowledge_world,
            structured_query,
            structured_query_batch,
        )

        world = knowledge_world()
        subjects = tuple(subject for subject, _ in FACTS[:2])
        batched = structured_query_batch(world, subjects, top_n=3)
        for subject in subjects:
            assert batched[subject] == structured_query(world, subject, top_n=3)


class TestFairness:
    def test_round_robin_rotates_at_concurrency_one(self, model, tokenizer):
        scheduler = QueryScheduler(model, tokenizer, concurrency=1, record_history=True)
        for name in ("a", "b", "c"):
            scheduler.submit(SearchQuery(WIDE, seed=ord(name)), name=name)
        scheduler.run()
        members = [names[0] for names in scheduler.stats.round_members]
        # While all three are runnable, service strictly rotates.
        assert members[:6] == ["a", "b", "c", "a", "b", "c"]
        assert all(len(names) == 1 for names in scheduler.stats.round_members)

    def test_shortest_frontier_picks_smallest_pending(self, model, tokenizer):
        scheduler = QueryScheduler(
            model, tokenizer, concurrency=1, fairness="shortest_frontier"
        )
        big = scheduler.submit(SearchQuery("The cat", seed=0), name="big")
        small = scheduler.submit(SearchQuery("The dog", seed=1), name="small")
        big._pending = LmRequest([(1,), (2,), (3,)])
        small._pending = LmRequest([(4,)])
        chosen = scheduler._select([big, small])
        assert [sq.name for sq in chosen] == ["small"]

    def test_fairness_never_changes_per_query_streams(self, model, tokenizer):
        streams = {}
        for fairness in FAIRNESS_POLICIES:
            scheduler = QueryScheduler(
                model, tokenizer, concurrency=2, fairness=fairness
            )
            handles = [
                scheduler.submit(SearchQuery(WIDE, seed=i), name=f"q{i}")
                for i in range(3)
            ]
            scheduler.run()
            streams[fairness] = [
                [(m.text, m.total_logprob) for m in h.results] for h in handles
            ]
        assert streams["round_robin"] == streams["shortest_frontier"]


class TestSchedulerSurface:
    def test_constructor_validation(self, model, tokenizer, env):
        with pytest.raises(ValueError, match="concurrency"):
            QueryScheduler(model, tokenizer, concurrency=0)
        with pytest.raises(ValueError, match="fairness"):
            QueryScheduler(model, tokenizer, fairness="lifo")
        with pytest.raises(ValueError, match="model"):
            QueryScheduler(
                model, tokenizer, logits_cache=LogitsCache(env.model("small"))
            )

    def test_scheduler_stats_as_dict(self, model, tokenizer):
        scheduler = QueryScheduler(model, tokenizer, record_history=True)
        scheduler.submit(SearchQuery("The ((cat)|(dog))"))
        scheduler.run()
        stats = scheduler.stats.as_dict()
        assert stats["rounds"] == len(scheduler.stats.round_sizes)
        assert stats["queries_submitted"] == 1
        assert stats["queries_completed"] == 1
        assert stats["mean_round_size"] > 0
        assert set(stats["per_query_latency"]) == {"q0"}

    def test_history_recording_is_off_by_default(self, model, tokenizer):
        # A long-lived scheduler must not retain every match (merged) or a
        # per-round log forever; aggregates still report round shape.
        scheduler = QueryScheduler(model, tokenizer)
        scheduler.submit(SearchQuery(WIDE))
        scheduler.run()
        assert scheduler.merged == []
        assert scheduler.stats.round_sizes == []
        assert scheduler.stats.round_members == []
        assert scheduler.stats.rounds > 0
        assert scheduler.stats.mean_round_size > 0
        assert scheduler.stats.max_round_size > 0

    def test_duplicate_names_get_distinct_latency_entries(self, model, tokenizer):
        scheduler = QueryScheduler(model, tokenizer)
        first = scheduler.submit(SearchQuery(WIDE, seed=1), name="dup")
        second = scheduler.submit(SearchQuery(WIDE, seed=2), name="dup")
        scheduler.run()
        assert first.name == "dup" and second.name != "dup"
        assert len(scheduler.stats.per_query_latency) == 2
        assert scheduler.stats.per_query_latency[second.name] == second.latency

    def test_submit_records_compilation_cache_deltas(self, model, tokenizer):
        scheduler = QueryScheduler(model, tokenizer)
        first = scheduler.submit(SearchQuery("The cat"))
        second = scheduler.submit(SearchQuery("The cat"))
        assert first.stats.compilation_cache_misses == 1
        assert second.stats.compilation_cache_hits == 1

    def test_search_many_api(self, model, tokenizer):
        queries = [SearchQuery(WIDE, seed=i) for i in range(2)]
        handles = search_many(
            model, tokenizer, queries,
            budget=QueryBudget(max_results=3), concurrency=2,
        )
        assert [h.name for h in handles] == ["q0", "q1"]
        for handle, query in zip(handles, queries):
            serial = _serial_matches(model, tokenizer, query, limit=3)
            assert [m.text for m in handle.results] == [m.text for m in serial]

    def test_merged_stream_is_permutation_of_per_query(self, model, tokenizer):
        scheduler = QueryScheduler(model, tokenizer, concurrency=2, record_history=True)
        handles = [
            scheduler.submit(SearchQuery(WIDE, seed=i), name=f"q{i}")
            for i in range(3)
        ]
        scheduler.run()
        per_query = {
            h.name: [m for n, m in scheduler.merged if n == h.name]
            for h in handles
        }
        for h in handles:
            assert per_query[h.name] == h.results
        assert len(scheduler.merged) == sum(len(h.results) for h in handles)
