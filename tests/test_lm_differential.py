"""Differential tests across the LM layer's scoring paths.

Every model exposes two ways to score a context (``logprobs`` and
``logprobs_batch``) and, after this PR, up to two execution strategies
each (dict walk vs frozen CSR arrays for the n-gram; full forward vs
incremental K/V decoding for the transformer).  All of them must agree:

* ``logprobs_batch`` == per-context ``logprobs`` (allclose, 1e-9) for
  both models, across ragged context lengths — pinning the
  length-grouping batch paths.
* n-gram CSR rows are *bit-identical* to the dict walk (same ops, same
  order).
* transformer incremental decoding matches the full re-forward to 1e-9
  at every traversal depth (the last-ulp tolerance comes from BLAS
  reassociation over different matmul shapes, not from the math).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.lm.ngram import NGramModel
from repro.lm.transformer import TransformerConfig, TransformerModel

VOCAB = 29
EOS = 0

#: Ragged context-length mix: empty, short, repeated, longer-than-order,
#: and a parent/child chain (the frontier shape incremental decoding is
#: built for).
def _ragged_contexts(rng, max_len=20, n=40):
    ctxs = [[], [3], [3], list(rng.integers(1, VOCAB, size=7))]
    for _ in range(n):
        ctxs.append(list(rng.integers(0, VOCAB, size=int(rng.integers(0, max_len)))))
    chain = list(rng.integers(1, VOCAB, size=10))
    ctxs.extend(chain[:i] for i in range(1, 11))
    return ctxs


@pytest.fixture(scope="module")
def ngram():
    rng = np.random.default_rng(7)
    seqs = [list(rng.integers(1, VOCAB, size=int(rng.integers(3, 24)))) for _ in range(300)]
    return NGramModel(vocab_size=VOCAB, eos_id=EOS, order=4, alpha=0.25).fit(seqs)


@pytest.fixture(scope="module")
def tconfig():
    return TransformerConfig(
        vocab_size=VOCAB, block_size=16, n_layer=2, n_head=2, n_embd=16
    )


class TestNGramBatchEqualsSingle:
    def test_batch_matches_per_context(self, ngram):
        rng = np.random.default_rng(11)
        ctxs = _ragged_contexts(rng)
        batch = ngram.logprobs_batch(ctxs)
        ngram._cache.clear()
        for ctx, row in zip(ctxs, batch):
            single = ngram.logprobs(ctx)
            assert np.allclose(row, single, atol=1e-9), ctx
            # The CSR scatter replays the dict walk's exact float ops.
            assert np.array_equal(row, single)

    def test_batch_dedupes_repeated_contexts(self, ngram):
        ngram._cache.clear()
        rows = ngram.logprobs_batch([[3, 4], [3, 4], [3, 4]])
        assert rows[0] is rows[1] is rows[2]

    def test_batch_on_dict_path_matches_csr(self, ngram):
        rng = np.random.default_rng(13)
        ctxs = _ragged_contexts(rng, n=15)
        ngram._cache.clear()
        csr_rows = ngram.logprobs_batch(ctxs)
        ngram._use_csr = False
        ngram._cache.clear()
        try:
            dict_rows = ngram.logprobs_batch(ctxs)
        finally:
            ngram._use_csr = True
            ngram._cache.clear()
        for a, b in zip(csr_rows, dict_rows):
            assert np.array_equal(a, b)

    def test_distributions_proper(self, ngram):
        rng = np.random.default_rng(17)
        for ctx in _ragged_contexts(rng, n=10):
            lp = ngram.logprobs(ctx)
            assert np.isclose(np.exp(lp).sum(), 1.0, atol=1e-9)


class TestNGramCsrEqualsDict:
    def test_distribution_bit_identical(self, ngram):
        rng = np.random.default_rng(19)
        for ctx in _ragged_contexts(rng, n=25):
            key = ngram._context_key(ctx)
            csr = ngram._distribution_csr(key)
            ref = ngram._distribution_dict(key)
            assert np.array_equal(csr, ref), key

    def test_freeze_survives_refit(self, ngram):
        """fit() may be called repeatedly; the CSR arrays must refreeze."""
        rng = np.random.default_rng(23)
        model = NGramModel(vocab_size=VOCAB, eos_id=EOS, order=3).fit(
            [[1, 2, 3], [2, 3, 4]]
        )
        before = model.logprobs([1, 2]).copy()
        model.fit([[1, 2, 5]] * 50)  # accumulate counts, refreeze
        after = model.logprobs([1, 2])
        assert not np.array_equal(before, after)
        assert np.array_equal(after, np.log(model._distribution_dict(model._context_key([1, 2]))))


class TestTransformerBatchEqualsSingle:
    @pytest.mark.parametrize("kv", [None, 4.0], ids=["cache_off", "cache_on"])
    def test_batch_matches_per_context(self, tconfig, kv):
        rng = np.random.default_rng(29)
        ctxs = _ragged_contexts(rng, max_len=20, n=25)
        batch_model = TransformerModel(tconfig, eos_id=EOS, seed=5, kv_cache_mb=kv)
        single_model = TransformerModel(tconfig, eos_id=EOS, seed=5, kv_cache_mb=kv)
        batch = batch_model.logprobs_batch(ctxs)
        for ctx, row in zip(ctxs, batch):
            assert np.allclose(row, single_model.logprobs(ctx), atol=1e-9), ctx

    def test_rows_are_proper_distributions(self, tconfig):
        model = TransformerModel(tconfig, eos_id=EOS, seed=5, kv_cache_mb=2.0)
        rows = model.logprobs_batch([[1, 2], [1, 2, 3], []])
        for row in rows:
            assert np.isclose(np.exp(row).sum(), 1.0, atol=1e-9)


class TestTransformerIncrementalEqualsFull:
    def test_incremental_matches_full_forward(self, tconfig):
        full = TransformerModel(tconfig, eos_id=EOS, seed=9, kv_cache_mb=None)
        incr = TransformerModel(tconfig, eos_id=EOS, seed=9, kv_cache_mb=8.0)
        rng = np.random.default_rng(31)
        chain = list(rng.integers(1, VOCAB, size=24))  # exceeds block_size: clips
        for depth in range(1, len(chain) + 1):
            ctx = chain[:depth]
            a = full.logprobs(ctx)
            b = incr.logprobs(ctx)
            assert np.allclose(a, b, atol=1e-9), depth
        assert incr.prefix_cache.hits > 0

    def test_steady_state_chain_is_all_hits(self, tconfig):
        incr = TransformerModel(tconfig, eos_id=EOS, seed=9, kv_cache_mb=8.0)
        chain = [3, 5, 7, 9, 11]
        for depth in range(1, len(chain) + 1):
            incr.logprobs(chain[:depth])
        # Depth-1 contexts have no proper cached prefix; everything deeper
        # reuses the parent's state computed the step before.
        assert incr.prefix_cache.misses == 1
        assert incr.prefix_cache.hits == len(chain) - 1

    def test_batch_incremental_matches_full(self, tconfig):
        full = TransformerModel(tconfig, eos_id=EOS, seed=9, kv_cache_mb=None)
        incr = TransformerModel(tconfig, eos_id=EOS, seed=9, kv_cache_mb=8.0)
        rng = np.random.default_rng(37)
        ctxs = _ragged_contexts(rng, max_len=14, n=30)
        ref = full.logprobs_batch(ctxs)
        # Score twice: the second round is served almost entirely from
        # cached ancestors, and must still match.
        for _ in range(2):
            got = incr.logprobs_batch(ctxs)
            for a, b in zip(ref, got):
                assert np.allclose(a, b, atol=1e-9)

    def test_training_step_invalidates_cache(self, tconfig):
        incr = TransformerModel(tconfig, eos_id=EOS, seed=9, kv_cache_mb=8.0)
        incr.logprobs([1, 2, 3])
        assert len(incr.prefix_cache) > 0
        idx = np.array([[1, 2, 3]], dtype=np.int64)
        targets = np.array([[2, 3, 4]], dtype=np.int64)
        _, grads = incr.loss_and_grads(idx, targets)
        incr.adam_step(grads)
        assert len(incr.prefix_cache) == 0
        # Post-training scores must reflect the new weights, not stale K/V.
        fresh = TransformerModel(tconfig, eos_id=EOS, seed=9, kv_cache_mb=None)
        _, grads = fresh.loss_and_grads(idx, targets)
        fresh.adam_step(grads)
        assert np.allclose(incr.logprobs([1, 2, 3]), fresh.logprobs([1, 2, 3]), atol=1e-9)

    def test_disable_reverts_to_full_forward(self, tconfig):
        model = TransformerModel(tconfig, eos_id=EOS, seed=9)
        assert model.prefix_cache is not None  # on by default
        model.disable_prefix_cache()
        assert model.prefix_cache is None
        ref = TransformerModel(tconfig, eos_id=EOS, seed=9, kv_cache_mb=None)
        assert np.array_equal(model.logprobs([1, 2]), ref.logprobs([1, 2]))

    def test_enable_resizes(self, tconfig):
        model = TransformerModel(tconfig, eos_id=EOS, seed=9, kv_cache_mb=None)
        cache = model.enable_prefix_cache(1 << 20)
        assert model.prefix_cache is cache
        assert cache.max_bytes == 1 << 20
        assert model.enable_prefix_cache(1 << 20) is cache  # same budget: kept
        assert model.enable_prefix_cache(2 << 20) is not cache
