"""Differential and property-based tests: our regex engine vs Python's
``re``.

Random patterns from a restricted generator are compiled both ways and
compared on random candidate strings.  This is the strongest correctness
evidence for the parser → NFA → DFA pipeline.
"""

from __future__ import annotations

import re as pyre

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.regex import compile_dfa, escape

# -- pattern generator ----------------------------------------------------------
# A recursive strategy over the shared dialect (literals from a small
# alphabet, classes, alternation, concat, bounded repetition).

_LITERALS = "abc01"

_literal = st.sampled_from(_LITERALS).map(lambda c: c)
_char_class = st.lists(
    st.sampled_from(_LITERALS), min_size=1, max_size=3, unique=True
).map(lambda cs: "[" + "".join(sorted(cs)) + "]")

_atom = st.one_of(_literal, _char_class)


def _combine(children):
    return st.one_of(
        st.tuples(children, children).map(lambda t: t[0] + t[1]),
        st.tuples(children, children).map(lambda t: f"({t[0]}|{t[1]})"),
        children.map(lambda c: f"({c})*"),
        children.map(lambda c: f"({c})?"),
        children.map(lambda c: f"({c})+"),
        children.map(lambda c: f"({c}){{1,2}}"),
    )


_pattern = st.recursive(_atom, _combine, max_leaves=8)

_candidate = st.text(alphabet=_LITERALS, max_size=8)


@settings(max_examples=200, deadline=None)
@given(pattern=_pattern, text=_candidate)
def test_matches_python_re(pattern, text):
    """Full-match agreement with the stdlib engine on random inputs."""
    ours = compile_dfa(pattern)
    theirs = pyre.compile(pattern)
    assert ours.accepts_string(text) == bool(theirs.fullmatch(text)), (
        pattern,
        text,
    )


@settings(max_examples=100, deadline=None)
@given(pattern=_pattern)
def test_enumerated_strings_all_match(pattern):
    """Every string our DFA enumerates full-matches under Python re."""
    dfa = compile_dfa(pattern)
    theirs = pyre.compile(pattern)
    for s in dfa.enumerate_strings(limit=20, max_length=10):
        assert theirs.fullmatch(s), (pattern, s)


@settings(max_examples=100, deadline=None)
@given(pattern=_pattern, text=_candidate)
def test_nfa_and_dfa_agree(pattern, text):
    """The unminimised NFA and the minimised DFA define the same
    language."""
    from repro.automata.nfa import nfa_from_ast
    from repro.regex.parser import parse

    nfa = nfa_from_ast(parse(pattern))
    dfa = compile_dfa(pattern)
    assert nfa.accepts_string(text) == dfa.accepts_string(text)


@settings(max_examples=100, deadline=None)
@given(text=st.text(alphabet=_LITERALS + "().*+?[]{}|\\", max_size=10))
def test_escape_roundtrip(text):
    """escape(s) compiles to the singleton language {s}."""
    dfa = compile_dfa(escape(text))
    assert dfa.accepts_string(text)
    assert dfa.count_strings() == 1


@settings(max_examples=60, deadline=None)
@given(p1=_pattern, p2=_pattern, text=_candidate)
def test_product_ops_semantics(p1, p2, text):
    """Intersection/union/difference behave set-theoretically."""
    a, b = compile_dfa(p1), compile_dfa(p2)
    in_a, in_b = a.accepts_string(text), b.accepts_string(text)
    assert a.intersect(b).accepts_string(text) == (in_a and in_b)
    assert a.union(b).accepts_string(text) == (in_a or in_b)
    assert a.difference(b).accepts_string(text) == (in_a and not in_b)


@settings(max_examples=80, deadline=None)
@given(pattern=_pattern, text=_candidate)
def test_minimization_preserves_language(pattern, text):
    raw = compile_dfa(pattern, minimize=False)
    mini = raw.minimized()
    assert raw.accepts_string(text) == mini.accepts_string(text)
