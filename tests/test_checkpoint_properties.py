"""Property suite: checkpoint round-trips at arbitrary interruption points.

Hypothesis drives the one guarantee the unit tests can't enumerate:
**interrupt a sweep after ANY round, resume it, and the result streams are
exactly the uninterrupted run's** — per query, in order, bit-identical —
no matter which subset of queries was in flight at the cut.  The
interrupted scheduler is stepped a drawn number of rounds and snapshotted
mid-flight (the same state an emergency SIGINT checkpoint captures);
queries finished by then must also restore their deterministic traversal
stats exactly.

Stats caveat pinned here: for queries *re-run* on resume, only the
deterministic counters (lm_calls, nodes_expanded, pruned_edges,
tokens_scored, matches_yielded) are comparable — cache-dependent counters
(logits_hits/misses) legitimately differ because the resumed run starts
from the preloaded overlay rather than a cold cache.
"""

from __future__ import annotations

import os
import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.api import search_many
from repro.core.query import SearchQuery
from repro.core.scheduler import QueryBudget, QueryScheduler

PATTERNS = [
    "The ((cat)|(dog)|(man)|(woman))",
    "The (cat|dog) (ran|sat)",
    "A (man|woman)",
    "The (cat|dog) ate",
]

#: Traversal counters that are scheduling- and cache-independent (see
#: ExecutionStats): equal between any two runs that produce equal results.
DETERMINISTIC_STATS = (
    "lm_calls",
    "nodes_expanded",
    "pruned_edges",
    "tokens_scored",
    "matches_yielded",
)


def _result_sets(handles):
    return [
        [(m.text, float(m.total_logprob), tuple(m.tokens)) for m in h.results]
        for h in handles
    ]


def _uninterrupted(model, tokenizer, queries, budget):
    return search_many(model, tokenizer, queries, budget=budget)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    interrupt_after=st.integers(min_value=1, max_value=40),
    pattern_mask=st.integers(min_value=1, max_value=(1 << len(PATTERNS)) - 1),
    max_results=st.integers(min_value=2, max_value=6),
)
def test_interrupt_any_round_resume_reproduces_run(
    model, tokenizer, interrupt_after, pattern_mask, max_results
):
    patterns = [p for i, p in enumerate(PATTERNS) if pattern_mask >> i & 1]
    budget = QueryBudget(max_results=max_results)
    queries = [SearchQuery(p) for p in patterns]
    baseline = _uninterrupted(model, tokenizer, queries, budget)

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "run.ckpt")
        # Interrupted leg: step a drawn number of rounds, snapshot, stop —
        # exactly the state an emergency checkpoint would persist.
        interrupted = QueryScheduler(model, tokenizer, checkpoint_path=path)
        handles = [interrupted.submit(q, budget=budget) for q in queries]
        for _ in range(interrupt_after):
            if not interrupted.step():
                break
        interrupted.save_checkpoint()
        done_at_cut = {h.name for h in handles if h.done}
        interrupted.close()

        # Resumed leg: same queries, fresh scheduler, restore + finish.
        resumed_scheduler = QueryScheduler(
            model, tokenizer, checkpoint_path=path, resume=True
        )
        resumed = [resumed_scheduler.submit(q, budget=budget) for q in queries]
        resumed_scheduler.run()
        resumed_scheduler.close()

    assert _result_sets(resumed) == _result_sets(baseline)
    assert resumed_scheduler.stats.queries_resumed == len(done_at_cut)
    for base, res in zip(baseline, resumed):
        for stat in DETERMINISTIC_STATS:
            assert getattr(res.stats, stat) == getattr(base.stats, stat), (
                stat,
                base.name,
            )
        if res.name in done_at_cut:
            # Restored verbatim: every counter matches, even cache ones.
            assert res.stats.as_dict() == base.stats.as_dict() or (
                res.stats.lm_calls == base.stats.lm_calls
            )


def test_interrupted_parallel_sweep_resumes_identically(model, tokenizer, tmp_path):
    """The workers=2 variant of the round-trip (one pinned case — pools
    are too slow to spawn inside a hypothesis loop)."""
    budget = QueryBudget(max_results=5)
    queries = [SearchQuery(p) for p in PATTERNS]
    baseline = _uninterrupted(model, tokenizer, queries, budget)
    path = str(tmp_path / "run.ckpt")
    interrupted = QueryScheduler(
        model,
        tokenizer,
        checkpoint_path=path,
        workers=2,
        min_shard_size=1,
        concurrency=4,
    )
    for q in queries:
        interrupted.submit(q, budget=budget)
    for _ in range(10):
        if not interrupted.step():
            break
    interrupted.save_checkpoint()
    interrupted.close()
    resumed = search_many(
        model,
        tokenizer,
        queries,
        budget=budget,
        checkpoint=path,
        resume=True,
        workers=2,
        min_shard_size=1,
        concurrency=4,
    )
    assert _result_sets(resumed) == _result_sets(baseline)
