"""Tests for the n-gram language model (repro.lm.ngram)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lm.ngram import NGramModel
from repro.tokenizers.bpe import train_bpe

_CORPUS = ["the cat sat on the mat", "the cat ate the fish", "a dog sat on the rug"] * 20


@pytest.fixture(scope="module")
def tok():
    return train_bpe(_CORPUS, vocab_size=180)


@pytest.fixture(scope="module")
def lm(tok):
    return NGramModel.train_on_text(_CORPUS, tok, order=4, alpha=0.1)


class TestDistribution:
    def test_proper_distribution_everywhere(self, lm, tok):
        for ctx in [[], tok.encode("the cat"), tok.encode("zz qq"), tok.encode("a dog sat")]:
            lp = lm.logprobs(ctx)
            assert lp.shape == (lm.vocab_size,)
            assert abs(np.exp(lp).sum() - 1.0) < 1e-9

    def test_full_support(self, lm, tok):
        lp = lm.logprobs(tok.encode("the"))
        assert np.all(np.isfinite(lp))  # smoothing: every token has p > 0

    def test_memorises_continuations(self, lm, tok):
        ctx = tok.encode("the cat sat on the")
        best = int(np.argmax(lm.logprobs(ctx)))
        assert tok.vocab.token_of(best) == " mat"

    def test_seen_beats_unseen(self, lm, tok):
        ctx = tok.encode("the cat")
        lp = lm.logprobs(ctx)
        seen = tok.encode(" sat")[0]
        unseen = tok.vocab.id_of("Z")
        assert lp[seen] > lp[unseen]

    def test_bos_padding_shapes_sentence_starts(self, lm, tok):
        # Sentence-initial tokens dominate the empty-context distribution.
        lp = lm.logprobs([])
        best = tok.vocab.token_of(int(np.argmax(lp)))
        assert best in ("the", "a")

    def test_eos_predicted_at_line_end(self, lm, tok):
        ctx = tok.encode("the cat sat on the mat")
        lp = lm.logprobs(ctx)
        assert int(np.argmax(lp)) == lm.eos_id


class TestTraining:
    def test_fit_accumulates(self, tok):
        m = NGramModel(vocab_size=len(tok), eos_id=tok.eos_id, order=3)
        m.fit([tok.encode("the cat")])
        before = m.num_parameters()
        m.fit([tok.encode("a dog")])
        assert m.num_parameters() > before

    def test_unfitted_raises(self, tok):
        m = NGramModel(vocab_size=len(tok), eos_id=tok.eos_id, order=2)
        with pytest.raises(RuntimeError):
            m.logprobs([])

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            NGramModel(vocab_size=10, eos_id=0, order=0)

    def test_zero_alpha_rejected(self):
        with pytest.raises(ValueError):
            NGramModel(vocab_size=10, eos_id=0, alpha=0.0)

    def test_context_count(self, lm, tok):
        assert lm.context_count(tok.encode("the cat sat")) > 0
        assert lm.context_count(tok.encode("zz qq zz")) == 0

    def test_encoding_noise_plants_noncanonical(self, tok):
        noisy = NGramModel.train_on_text(
            _CORPUS, tok, order=3, encoding_noise=1.0, noise_seed=1
        )
        clean = NGramModel.train_on_text(_CORPUS, tok, order=3)
        # The noisy model has different statistics (split tokens counted).
        assert noisy.num_parameters() != clean.num_parameters()


class TestOrderBehaviour:
    def test_higher_order_sharper_on_long_context(self, tok):
        low = NGramModel.train_on_text(_CORPUS, tok, order=2, alpha=0.1)
        high = NGramModel.train_on_text(_CORPUS, tok, order=5, alpha=0.1)
        ctx = tok.encode("the cat sat on the")
        target = tok.encode(" mat")[0]
        assert high.logprobs(ctx)[target] >= low.logprobs(ctx)[target]

    def test_unigram_model_ignores_context(self, tok):
        uni = NGramModel.train_on_text(_CORPUS, tok, order=1, alpha=0.1)
        a = uni.logprobs(tok.encode("the cat"))
        b = uni.logprobs(tok.encode("a dog"))
        assert np.allclose(a, b)


class TestSequenceScoring:
    def test_chain_rule(self, lm, tok):
        tokens = tok.encode("the cat sat")
        total = lm.sequence_logprob(tokens)
        manual = 0.0
        ctx: list[int] = []
        for t in tokens:
            manual += float(lm.logprobs(ctx)[t])
            ctx.append(t)
        assert abs(total - manual) < 1e-9

    def test_prefix_not_scored(self, lm, tok):
        prefix = tok.encode("the cat")
        suffix = tok.encode(" sat")
        conditional = lm.sequence_logprob(suffix, prefix=prefix)
        joint = lm.sequence_logprob(prefix + suffix)
        assert conditional > joint  # prefix mass excluded

    def test_generate_stops_at_eos(self, lm, tok, rng):
        out = lm.generate(tok.encode("the cat sat on the mat"), rng, max_new_tokens=50)
        assert lm.eos_id not in out
        assert len(out) <= 50


class TestLogprobsLruCache:
    """Regression suite for the row cache's eviction order.

    The old path inserted the new row *then* popped the LRU entry, so the
    cache transiently held ``cache_size + 1`` rows; eviction must instead
    happen before the insert, and a cache at capacity must never serve a
    stale or evicted row (the same bug class as the PR 2 ``logprobs_round``
    mid-round eviction).
    """

    def _sized(self, tok, cache_size):
        m = NGramModel(
            vocab_size=len(tok), eos_id=tok.eos_id, order=3, alpha=0.1,
            cache_size=cache_size,
        )
        m.fit([tok.encode(line) for line in _CORPUS])
        return m

    def test_capacity_never_exceeded(self, tok):
        m = self._sized(tok, cache_size=4)
        for start in range(12):
            m.logprobs([start, start + 1])
            assert len(m._cache) <= 4

    def test_rows_correct_at_capacity(self, tok):
        """Every row returned while the cache churns equals a fresh
        computation — no stale/evicted row is ever served."""
        m = self._sized(tok, cache_size=3)
        contexts = [[i, i + 1] for i in range(8)]
        served = [m.logprobs(c).copy() for c in contexts]
        for ctx, row in zip(contexts, served):
            fresh = np.log(m._distribution(m._context_key(ctx)))
            assert np.array_equal(row, fresh), ctx

    def test_evicted_key_recomputed_identically(self, tok):
        m = self._sized(tok, cache_size=2)
        first = m.logprobs([1, 2]).copy()
        m.logprobs([3, 4])
        m.logprobs([5, 6])  # evicts [1, 2]
        assert m._context_key([1, 2]) not in m._cache
        again = m.logprobs([1, 2])
        assert np.array_equal(first, again)

    def test_batch_survives_mid_batch_eviction(self, tok):
        """A batch larger than the whole cache still returns correct rows
        for every occurrence, including repeats of evicted keys."""
        m = self._sized(tok, cache_size=2)
        contexts = [[i, i + 1] for i in range(6)]
        contexts.append([0, 1])  # repeat of a row evicted mid-batch
        rows = m.logprobs_batch(contexts)
        assert np.array_equal(rows[0], rows[-1])
        for ctx, row in zip(contexts, rows):
            fresh = np.log(m._distribution(m._context_key(ctx)))
            assert np.array_equal(row, fresh)

    def test_hit_moves_to_end(self, tok):
        m = self._sized(tok, cache_size=2)
        m.logprobs([1, 2])
        m.logprobs([3, 4])
        m.logprobs([1, 2])  # refresh recency
        m.logprobs([5, 6])  # should evict [3, 4], not [1, 2]
        assert m._context_key([1, 2]) in m._cache
        assert m._context_key([3, 4]) not in m._cache
