"""Tests for the beam traversal and the elimination-tracking diagnostic."""

from __future__ import annotations

import pytest

from repro.core.api import prepare
from repro.core.diagnostics import EliminationTracker
from repro.core.query import QuerySearchStrategy, SearchQuery


def _beam_query(pattern, width=8, **kw):
    return SearchQuery(
        pattern,
        strategy=QuerySearchStrategy.BEAM,
        beam_width=width,
        **kw,
    )


class TestBeamSearch:
    def test_finds_whole_small_language(self, model, tokenizer):
        results = {r.text for r in prepare(model, tokenizer, _beam_query("The ((cat)|(dog))"))}
        assert results == {"The cat", "The dog"}

    def test_scores_match_model(self, model, tokenizer):
        for r in prepare(model, tokenizer, _beam_query("The ((cat)|(dog))")):
            assert r.total_logprob == pytest.approx(
                model.sequence_logprob(r.tokens), abs=1e-9
            )

    def test_width_one_is_greedy_single_path(self, model, tokenizer):
        results = list(
            prepare(model, tokenizer, _beam_query("The ((cat)|(dog)|(man)|(woman))", width=1))
        )
        assert len(results) <= 1

    def test_narrow_beam_loses_matches_wide_beam_keeps(self, model, tokenizer):
        pattern = "The ((cat)|(dog)|(man)|(woman))"
        wide = {r.text for r in prepare(model, tokenizer, _beam_query(pattern, width=32))}
        narrow = {r.text for r in prepare(model, tokenizer, _beam_query(pattern, width=1))}
        assert narrow <= wide
        assert len(wide) == 4

    def test_respects_topk(self, model, tokenizer):
        results = {
            r.text
            for r in prepare(model, tokenizer, _beam_query("The ((cat)|(dog))", top_k=1))
        }
        assert len(results) <= 1

    def test_require_eos_scores_terminator(self, model, tokenizer):
        base = next(iter(prepare(model, tokenizer, _beam_query("The cat sat on the mat\\."))))
        term = next(
            iter(
                prepare(
                    model, tokenizer, _beam_query("The cat sat on the mat\\.", require_eos=True)
                )
            )
        )
        assert term.total_logprob < base.total_logprob

    def test_prefix_fast_forward(self, model, tokenizer):
        query = _beam_query(
            "The cat sat on the ((mat)|(rug))\\.", width=8, prefix="The cat sat on the"
        )
        results = list(prepare(model, tokenizer, query))
        assert results[0].text == "The cat sat on the mat."

    def test_sequence_length_bounds_depth(self, model, tokenizer):
        for r in prepare(model, tokenizer, _beam_query("a+", width=4, sequence_length=3)):
            assert len(r.tokens) <= 3


class TestEliminationTracker:
    def test_tracks_killed_sequences(self, model, tokenizer):
        query = SearchQuery("[0-9]{2}", top_k=2, sequence_length=6)
        session = prepare(
            model, tokenizer, query, max_expansions=500, track_elimination=True
        )
        list(session)
        tracker = session.executor.elimination_tracker
        assert tracker is not None
        assert tracker.events == session.stats.pruned_edges
        assert 0 <= tracker.eliminated <= tracker.total_sequences()

    def test_no_pruning_no_elimination(self, model, tokenizer):
        query = SearchQuery("The ((cat)|(dog))")  # no decision rule
        session = prepare(model, tokenizer, query, track_elimination=True)
        list(session)
        assert session.executor.elimination_tracker.eliminated == 0

    def test_tracker_counts_against_manual_dp(self, model, tokenizer):
        """One pruned edge at the root of [0-9]{2} kills exactly the
        10 two-digit strings through it (one encoding each at depth 2)."""
        from repro.core.compiler import GraphCompiler

        compiled = GraphCompiler(tokenizer).compile(SearchQuery("[0-9]{2}"))
        tracker = EliminationTracker(compiled.token_automaton, max_tokens=2)
        # Pick a single-character first edge and prune it.
        start = compiled.token_automaton.start
        row = compiled.token_automaton.successors(start)
        one_char = [
            (tid, dst)
            for tid, dst in row.items()
            if len(tokenizer.vocab.token_of(tid)) == 1
        ]
        tid, dst = one_char[0]
        killed = tracker.record_pruned_edge(dst, 0)
        # From dst with 1 token budget left: exactly the 10 second digits.
        assert killed == 10

    def test_disabled_by_default(self, model, tokenizer):
        session = prepare(model, tokenizer, SearchQuery("ab"))
        assert session.executor.elimination_tracker is None
