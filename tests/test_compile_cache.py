"""Persistent compile cache, token-automaton minimization, interval arrays,
and the size-aware in-memory compilation cache.

Covers the compile-time fast path's correctness edges: disk entries round
trip bit-identically, corrupted/version-mismatched entries warn and miss
(never crash), warm runs recompile nothing, worker/resume runs share the
directory, and the in-memory cache evicts by bytes as well as by entry
count.
"""

from __future__ import annotations

import pickle
import warnings

import numpy as np
import pytest

from repro.core.api import search_many
from repro.core.compile_cache import (
    COMPILE_CACHE_VERSION,
    CompileCacheEntry,
    CompileDiskCache,
)
from repro.core.compiler import CompilationCache, GraphCompiler
from repro.core.query import SearchQuery
from repro.core.scheduler import QueryScheduler

from .conftest import build_model, build_tokenizer

PATTERNS = [
    "The (cat|dog)",
    "The (man|woman) was",
    "My phone number is [0-9]{3}",
    "The cat sat",
]


@pytest.fixture(scope="module")
def tok():
    return build_tokenizer()


@pytest.fixture(scope="module")
def lm(tok):
    return build_model(tok)


def run_streams(model, tok, compiler):
    handles = search_many(
        model, tok, [SearchQuery(p) for p in PATTERNS], compiler=compiler
    )
    return [
        [(m.tokens, m.text, m.logprob, m.total_logprob) for m in h.results]
        for h in handles
    ]


class TestDiskRoundTrip:
    def test_cold_then_disk_hit(self, tok, tmp_path):
        c1 = GraphCompiler(tok, disk_cache=tmp_path)
        a = c1.compile(SearchQuery(PATTERNS[0]))
        assert a.metrics.source == "cold"
        assert c1.disk_cache.writes == 1
        # Fresh compiler (fresh process stand-in), same directory.
        c2 = GraphCompiler(tok, disk_cache=tmp_path)
        b = c2.compile(SearchQuery(PATTERNS[0]))
        assert b.metrics.source == "disk"
        assert b.token_automaton.edges == a.token_automaton.edges
        assert b.token_automaton.accepts == a.token_automaton.accepts
        assert b.token_automaton.prefix_live == a.token_automaton.prefix_live

    def test_disk_hit_results_bit_identical(self, tok, lm, tmp_path):
        cold = run_streams(lm, tok, GraphCompiler(tok, disk_cache=tmp_path))
        warm = run_streams(lm, tok, GraphCompiler(tok, disk_cache=tmp_path))
        assert warm == cold

    def test_warm_run_recompiles_zero_queries(self, tok, tmp_path):
        c1 = GraphCompiler(tok, disk_cache=tmp_path)
        for p in PATTERNS:
            c1.compile(SearchQuery(p))
        c2 = GraphCompiler(tok, disk_cache=tmp_path)
        for p in PATTERNS:
            assert c2.compile(SearchQuery(p)).metrics.source == "disk"
        assert c2.disk_cache.hits == len(PATTERNS)
        assert c2.disk_cache.misses == 0
        assert c2.disk_cache.writes == 0

    def test_no_leftover_tmp_files(self, tok, tmp_path):
        c = GraphCompiler(tok, disk_cache=tmp_path)
        for p in PATTERNS:
            c.compile(SearchQuery(p))
        assert list(tmp_path.glob("*.tmp")) == []
        assert len(list(tmp_path.glob("*.relmc"))) == len(PATTERNS)

    def test_distinct_options_get_distinct_entries(self, tok, tmp_path):
        GraphCompiler(tok, disk_cache=tmp_path).compile(SearchQuery(PATTERNS[0]))
        c2 = GraphCompiler(tok, disk_cache=tmp_path, minimize_tokens=False)
        compiled = c2.compile(SearchQuery(PATTERNS[0]))
        # minimize_tokens is part of the fingerprint: no false sharing.
        assert compiled.metrics.source == "cold"
        assert len(list(tmp_path.glob("*.relmc"))) == 2


class TestCorruptionHandling:
    def entry_path(self, tok, tmp_path):
        c = GraphCompiler(tok, disk_cache=tmp_path)
        c.compile(SearchQuery(PATTERNS[0]))
        return next(tmp_path.glob("*.relmc"))

    def test_corrupted_entry_warns_and_recompiles(self, tok, tmp_path):
        path = self.entry_path(tok, tmp_path)
        path.write_bytes(b"not a pickle")
        c = GraphCompiler(tok, disk_cache=tmp_path)
        with pytest.warns(RuntimeWarning, match="corrupted"):
            compiled = c.compile(SearchQuery(PATTERNS[0]))
        assert compiled.metrics.source == "cold"
        assert c.disk_cache.invalid == 1

    def test_truncated_entry_warns_and_recompiles(self, tok, tmp_path):
        path = self.entry_path(tok, tmp_path)
        path.write_bytes(path.read_bytes()[:40])
        c = GraphCompiler(tok, disk_cache=tmp_path)
        with pytest.warns(RuntimeWarning, match="corrupted"):
            assert c.compile(SearchQuery(PATTERNS[0])).metrics.source == "cold"

    def test_version_mismatch_warns_and_recompiles(self, tok, tmp_path):
        path = self.entry_path(tok, tmp_path)
        entry = pickle.loads(path.read_bytes())
        entry.version = COMPILE_CACHE_VERSION + 1
        path.write_bytes(pickle.dumps(entry))
        c = GraphCompiler(tok, disk_cache=tmp_path)
        with pytest.warns(RuntimeWarning, match="mismatch"):
            assert c.compile(SearchQuery(PATTERNS[0])).metrics.source == "cold"
        assert c.disk_cache.invalid == 1

    def test_wrong_object_type_warns(self, tmp_path):
        cache = CompileDiskCache(tmp_path)
        path = cache.path_for("f" * 32)
        path.write_bytes(pickle.dumps({"not": "an entry"}))
        with pytest.warns(RuntimeWarning, match="mismatch"):
            assert cache.get("f" * 32) is None

    def test_fingerprint_mismatch_rejected(self, tok, tmp_path):
        # An entry renamed to another fingerprint's slot must not serve it.
        path = self.entry_path(tok, tmp_path)
        cache = CompileDiskCache(tmp_path)
        moved = cache.path_for("0" * 32)
        path.rename(moved)
        with pytest.warns(RuntimeWarning, match="mismatch"):
            assert cache.get("0" * 32) is None

    def test_missing_file_is_silent_miss(self, tmp_path):
        cache = CompileDiskCache(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache.get("a" * 32) is None
        assert cache.misses == 1
        assert cache.invalid == 0


class TestSchedulerIntegration:
    def test_scheduler_shares_disk_cache(self, tok, lm, tmp_path):
        def sweep():
            comp = GraphCompiler(tok, cache=True, disk_cache=tmp_path)
            s = QueryScheduler(lm, tok, compiler=comp, concurrency=2)
            for p in PATTERNS:
                s.submit(SearchQuery(p))
            s.run()
            return s

        first = sweep()
        assert first.stats.compile_cache_disk_hits == 0
        second = sweep()
        assert second.stats.compile_cache_disk_hits == len(PATTERNS)
        for a, b in zip(first.queries, second.queries):
            assert [(m.tokens, m.text) for m in a.results] == [
                (m.tokens, m.text) for m in b.results
            ]

    def test_compile_ahead_bit_identical(self, tok, lm):
        base = search_many(
            lm, tok, [SearchQuery(p) for p in PATTERNS], concurrency=2
        )
        ahead = search_many(
            lm,
            tok,
            [SearchQuery(p) for p in PATTERNS],
            concurrency=2,
            compile_ahead=True,
        )
        for a, b in zip(base, ahead):
            assert [(m.tokens, m.text, m.logprob) for m in a.results] == [
                (m.tokens, m.text, m.logprob) for m in b.results
            ]

    def test_compile_ahead_pipelined_bit_identical(self, tok, lm):
        base = search_many(
            lm, tok, [SearchQuery(p) for p in PATTERNS], concurrency=2
        )
        ahead = search_many(
            lm,
            tok,
            [SearchQuery(p) for p in PATTERNS],
            concurrency=2,
            compile_ahead=True,
            pipeline=True,
        )
        for a, b in zip(base, ahead):
            assert [(m.tokens, m.text, m.logprob) for m in a.results] == [
                (m.tokens, m.text, m.logprob) for m in b.results
            ]

    def test_compile_ahead_defers_past_submit(self, tok, lm):
        s = QueryScheduler(lm, tok, concurrency=2, compile_ahead=True)
        handles = [s.submit(SearchQuery(p)) for p in PATTERNS]
        assert all(h.executor is None for h in handles)
        s.run()
        assert all(h.executor is not None for h in handles)
        assert all(h.done for h in handles)
        # Queries beyond the first concurrency slots compiled mid-run.
        assert s.stats.queries_compiled_ahead >= 1
        assert s.stats.compile_cache_misses == len(PATTERNS)

    def test_compile_ahead_admission_still_rejects(self, tok, lm):
        from repro.core.preprocessors import FilterPreprocessor
        from repro.core.query import QueryString, SimpleSearchQuery

        s = QueryScheduler(lm, tok, compile_ahead=True)
        # Statically-empty language: "a" minus "a" (RLM001, error-level).
        bad = s.submit(
            SimpleSearchQuery(
                query_string=QueryString("a"),
                preprocessors=(FilterPreprocessor(["a"]),),
            )
        )
        good = s.submit(SearchQuery(PATTERNS[0]))
        s.run()
        assert bad.truncated and bad.truncated_reason == "rejected"
        assert good.done and not good.truncated
        assert s.stats.queries_rejected == 1


class TestCompileMetrics:
    def test_metrics_reach_execution_stats(self, tok, lm):
        from repro.core.api import prepare

        session = prepare(lm, tok, SearchQuery(PATTERNS[0]))
        stats = session.stats
        assert stats.token_states > 0
        assert stats.token_edges > 0
        assert 0 < stats.minimized_states <= stats.token_states
        assert stats.compile_ms > 0.0
        assert "token_states" in stats.as_dict()

    def test_scheduler_aggregates_compile_ms(self, tok, lm):
        s = QueryScheduler(lm, tok)
        for p in PATTERNS:
            s.submit(SearchQuery(p))
        s.run()
        assert s.stats.compile_ms > 0.0
        assert s.stats.compile_cache_misses == len(PATTERNS)
        assert "compile_ms" in s.stats.as_dict()


class TestIntervalArrays:
    def test_interval_rows_expand_to_plain_rows(self, tok):
        minimized = GraphCompiler(tok, minimize_tokens=True)
        plain = GraphCompiler(tok, minimize_tokens=False)
        for pattern in PATTERNS:
            a = minimized.compile(SearchQuery(pattern))
            arr = a.token_automaton.arrays(vocab_size=len(tok))
            assert arr.intervals
            for state, row in a.token_automaton.edges.items():
                if not row:
                    assert arr.row(state) is None or arr.row(state).num_edges == 0
                    continue
                expanded = arr.row(state)
                assert list(expanded.token_ids) == list(row.keys())
                assert list(expanded.dst_states) == list(row.values())
            b = plain.compile(SearchQuery(pattern))
            brr = b.token_automaton.arrays(vocab_size=len(tok))
            assert not brr.intervals

    def test_dense_mask_identical_with_intervals(self, tok):
        from repro.core.arrays import AutomatonArrays

        compiled = GraphCompiler(tok).compile(SearchQuery(PATTERNS[0]))
        auto = compiled.token_automaton
        a = AutomatonArrays(auto.edges, auto.prefix_live, len(tok), intervals=True)
        b = AutomatonArrays(auto.edges, auto.prefix_live, len(tok), intervals=False)
        if a.has_dense_mask and b.has_dense_mask:
            for state in auto.edges:
                np.testing.assert_array_equal(a.token_mask(state), b.token_mask(state))

    def test_compression_reduces_bytes_on_runs(self):
        from repro.core.arrays import AutomatonArrays

        # One state, 1000 consecutive tokens to the same destination.
        edges = {0: {t: 1 for t in range(1000)}, 1: {}}
        a = AutomatonArrays(edges, frozenset(), 1024, intervals=True)
        b = AutomatonArrays(edges, frozenset(), 1024, intervals=False)
        assert a.states_compressed == 1
        assert a.interval_runs == 1
        assert a.bytes_estimate < b.bytes_estimate / 10
        row = a.row(0)
        assert list(row.token_ids) == list(range(1000))
        assert set(row.dst_states.tolist()) == {1}

    def test_incompressible_rows_stay_eager(self):
        from repro.core.arrays import AutomatonArrays

        # Alternating destinations: every run has length 1 — no win.
        edges = {0: {t: t % 2 for t in range(100)}}
        a = AutomatonArrays(edges, frozenset(), 128, intervals=True)
        assert a.states_compressed == 0
        assert a.row(0).num_edges == 100


class TestTokenMinimization:
    def test_minimized_preserves_match_semantics(self, tok):
        on = GraphCompiler(tok, minimize_tokens=True)
        off = GraphCompiler(tok, minimize_tokens=False)
        for pattern in PATTERNS:
            a = on.compile(SearchQuery(pattern)).token_automaton
            b = off.compile(SearchQuery(pattern)).token_automaton

            def paths(auto, limit=2000):
                out = []
                stack = [(auto.start, ())]
                while stack and len(out) < limit:
                    state, path = stack.pop()
                    if state in auto.accepts:
                        out.append(path)
                    if len(path) >= 8:
                        continue
                    for tokid, dst in sorted(auto.edges.get(state, {}).items()):
                        stack.append((dst, path + (tokid,)))
                return sorted(out)

            assert paths(a) == paths(b)

    def test_minimized_state_count_never_larger(self, tok):
        on = GraphCompiler(tok, minimize_tokens=True)
        for pattern in PATTERNS:
            m = on.compile(SearchQuery(pattern)).metrics
            assert m.minimized_states <= m.token_states


class TestCompilationCacheBytes:
    def make(self, states, edges):
        # A stand-in CompiledQuery: only num_states/num_edges are read.
        class Auto:
            pass

        class Compiled:
            pass

        c = Compiled()
        auto = Auto()
        auto.num_states = states
        auto.num_edges = edges
        c.token_automaton = auto
        return c

    def test_bytes_estimate_in_stats(self):
        cache = CompilationCache(max_entries=8)
        cache.put("a", self.make(10, 100))
        stats = cache.stats()
        assert stats["bytes_estimate"] == cache.entry_bytes(self.make(10, 100))
        assert stats["entries"] == 1

    def test_byte_budget_evicts_lru(self):
        entry_cost = CompilationCache.entry_bytes(self.make(10, 100))
        cache = CompilationCache(max_entries=64, max_bytes=3 * entry_cost)
        for key in "abcd":
            cache.put(key, self.make(10, 100))
        assert len(cache._store) == 3
        assert cache.get("a") is None  # oldest evicted by byte budget
        assert cache.get("d") is not None
        assert cache.bytes_estimate <= 3 * entry_cost

    def test_one_huge_entry_is_kept(self):
        # A single over-budget automaton must still cache (never evict the
        # only entry: that would thrash every templated loop).
        cache = CompilationCache(max_entries=64, max_bytes=1024)
        cache.put("huge", self.make(10_000, 1_000_000))
        assert cache.get("huge") is not None
        assert len(cache._store) == 1

    def test_replacement_updates_bytes(self):
        cache = CompilationCache(max_entries=8)
        cache.put("a", self.make(10, 100))
        first = cache.bytes_estimate
        cache.put("a", self.make(20, 200))
        assert cache.bytes_estimate == CompilationCache.entry_bytes(self.make(20, 200))
        assert cache.bytes_estimate != first

    def test_clear_resets_bytes(self):
        cache = CompilationCache()
        cache.put("a", self.make(10, 100))
        cache.clear()
        assert cache.bytes_estimate == 0
        assert cache.stats()["bytes_estimate"] == 0
