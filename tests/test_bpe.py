"""Tests for the BPE tokenizer (repro.tokenizers)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.alphabet import ALPHABET
from repro.tokenizers.bpe import BPETokenizer, pretokenize, train_bpe
from repro.tokenizers.vocab import EOS_TOKEN, Vocabulary

_TEXT = st.text(alphabet="".join(ALPHABET), max_size=40)


class TestPretokenize:
    def test_lossless(self):
        for text in ["The cat sat.", "a  b", "x7y", "hello, world!", " lead", "trail "]:
            assert "".join(pretokenize(text)) == text

    def test_keeps_leading_space_on_words(self):
        assert pretokenize("a cat") == ["a", " cat"]

    def test_digits_split_from_letters(self):
        assert pretokenize("ab12") == ["ab", "12"]

    @settings(max_examples=100, deadline=None)
    @given(text=_TEXT)
    def test_lossless_property(self, text):
        assert "".join(pretokenize(text)) == text


class TestVocabulary:
    def test_build_and_lookup(self):
        v = Vocabulary.build(["a", "b", "ab"])
        assert v.id_of("ab") == 2
        assert v.token_of(0) == "a"
        assert len(v) == 4  # 3 ordinary + eos

    def test_eos_is_special(self):
        v = Vocabulary.build(["a"])
        assert v.is_special(v.eos_id)
        assert not v.is_special(v.id_of("a"))

    def test_duplicate_token_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary.build(["a", "a"])

    def test_empty_token_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary.build([""])

    def test_decode_skips_specials(self):
        v = Vocabulary.build(["hi"])
        assert v.decode([v.id_of("hi"), v.eos_id]) == "hi"

    def test_ordinary_items_excludes_specials(self):
        v = Vocabulary.build(["a", "b"])
        assert EOS_TOKEN not in dict(v.ordinary_items())


class TestTraining:
    def test_deterministic(self):
        corpus = ["the cat sat on the mat"] * 20
        t1 = train_bpe(corpus, vocab_size=150)
        t2 = train_bpe(corpus, vocab_size=150)
        assert t1.merges == t2.merges
        assert t1.vocab.tokens == t2.vocab.tokens

    def test_frequent_words_become_tokens(self):
        corpus = ["the cat sat on the mat", "the cat ate the hat"] * 50
        tok = train_bpe(corpus, vocab_size=200)
        assert len(tok.encode(" cat")) == 1

    def test_vocab_contains_all_base_chars(self):
        tok = train_bpe(["ab"], vocab_size=120)
        for ch in ALPHABET:
            assert ch in tok.vocab

    def test_too_small_vocab_rejected(self):
        with pytest.raises(ValueError):
            train_bpe(["ab"], vocab_size=10)

    def test_stops_when_no_repeating_pairs(self):
        tok = train_bpe(["xyzq"], vocab_size=500)
        assert len(tok) < 500  # merges saturate early on a tiny corpus


class TestEncodeDecode:
    def test_roundtrip_known(self, tokenizer):
        for text in ["The cat sat on the mat.", "https://www.example.com",
                     "My phone number is 555 123 4567."]:
            assert tokenizer.decode(tokenizer.encode(text)) == text

    def test_outside_alphabet_rejected(self, tokenizer):
        with pytest.raises(ValueError):
            tokenizer.encode("emoji: \N{SNOWMAN}")

    @settings(max_examples=150, deadline=None)
    @given(text=_TEXT)
    def test_roundtrip_property(self, text):
        tok = _SHARED
        assert tok.decode(tok.encode(text)) == text

    def test_empty_text(self, tokenizer):
        assert tokenizer.encode("") == []
        assert tokenizer.decode([]) == ""


class TestCanonicality:
    def test_canonical_encoding_is_canonical(self, tokenizer):
        ids = tokenizer.encode("The cat sat.")
        assert tokenizer.is_canonical(ids)

    def test_char_split_is_not_canonical(self, tokenizer):
        ids = [tokenizer.vocab.id_of(c) for c in "The"]
        # "The" merges in this vocab, so the char-by-char form is ambiguous.
        if len(tokenizer.encode("The")) < 3:
            assert not tokenizer.is_canonical(ids)

    def test_eos_ignored_by_canonical_check(self, tokenizer):
        ids = tokenizer.encode("The cat") + [tokenizer.eos_id]
        assert tokenizer.is_canonical(ids)

    def test_canonical_prefix_accepts_partial_chunks(self, tokenizer):
        full = tokenizer.encode("The cat sat.")
        for i in range(len(full) + 1):
            assert tokenizer.is_canonical_prefix(full[:i]), full[:i]

    def test_noncanonical_interior_rejected_as_prefix(self, tokenizer):
        the = tokenizer.encode("The")
        if len(the) == 1:
            chars = [tokenizer.vocab.id_of(c) for c in "The"]
            suffix = tokenizer.encode(" cat")
            assert not tokenizer.is_canonical_prefix(chars + suffix)

    def test_encode_noncanonical_roundtrips(self, tokenizer):
        rng = random.Random(0)
        text = "The cat sat on the mat."
        ids = tokenizer.encode_noncanonical(text, rng)
        assert tokenizer.decode(ids) == text
        assert not tokenizer.is_canonical(ids)

    @settings(max_examples=80, deadline=None)
    @given(text=_TEXT, seed=st.integers(0, 100))
    def test_noncanonical_still_decodes(self, text, seed):
        tok = _SHARED
        ids = tok.encode_noncanonical(text, random.Random(seed))
        assert tok.decode(ids) == text


class TestSerialisation:
    def test_json_roundtrip(self, tokenizer):
        clone = BPETokenizer.from_json(tokenizer.to_json())
        for text in ["The cat", "abc 123", "x"]:
            assert clone.encode(text) == tokenizer.encode(text)
        assert clone.eos_id == tokenizer.eos_id


#: Module-level tokenizer for hypothesis tests (fixtures don't mix with
#: @given cleanly).
_SHARED = train_bpe(
    ["The cat sat on the mat.", "the dog ate 123 things!", "a b c d e"] * 20,
    vocab_size=200,
)


def _bpe_chunk_reference(tokenizer, chunk):
    """The textbook rescan merge loop: global lowest-rank pair, leftmost
    occurrence, recomputed from scratch after every merge.  The production
    heap + linked-list implementation must match it exactly."""
    parts = list(chunk)
    while len(parts) > 1:
        best_rank = None
        best_index = -1
        for i in range(len(parts) - 1):
            rank = tokenizer._ranks.get((parts[i], parts[i + 1]))
            if rank is not None and (best_rank is None or rank < best_rank):
                best_rank = rank
                best_index = i
        if best_rank is None:
            break
        parts[best_index : best_index + 2] = [parts[best_index] + parts[best_index + 1]]
    return tuple(tokenizer.vocab.id_of(p) for p in parts)


class TestHeapMergeEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(text=_TEXT)
    def test_heap_merge_matches_rescan_reference(self, text):
        tok = _SHARED
        for chunk in pretokenize(text):
            tok._cache.pop(chunk, None)  # force the real merge path
            assert tok._bpe_chunk(chunk) == _bpe_chunk_reference(tok, chunk)

    def test_long_single_chunk(self):
        chunk = "thecatsatonthematthedogatethings" * 3
        _SHARED._cache.pop(chunk, None)
        assert _SHARED._bpe_chunk(chunk) == _bpe_chunk_reference(_SHARED, chunk)
