"""Acceptance tests: every example script runs end-to-end.

Examples are the repository's demonstration surface; this module imports
each one and executes its ``main()``, asserting on key output lines so
documentation rot is caught by CI.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

_EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", _EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run_example("quickstart", capsys)
    assert "My phone number is 555 123 4567" in out
    assert "The cat" in out and "The dog" in out


def test_birthdate(capsys):
    out = _run_example("birthdate", capsys)
    assert "13,200,000" in out
    assert "#1: February 22, 1732" in out


def test_url_extraction(capsys):
    out = _run_example("url_extraction", capsys)
    assert "relm" in out
    assert "baseline_n16" in out
    assert "speedup" in out


def test_bias_audit(capsys):
    out = _run_example("bias_audit", capsys)
    assert "fig7b_canonical_prefix" in out
    assert "chi^2" in out
    assert "Ground truth" in out


def test_toxicity_screen(capsys):
    out = _run_example("toxicity_screen", capsys)
    assert "Prompted extraction success" in out
    assert "ratio" in out


def test_lambada_tuning(capsys):
    out = _run_example("lambada_tuning", capsys)
    assert "Table 1" in out
    assert "no_stop" in out


def test_transformer_backend(capsys):
    out = _run_example("transformer_backend", capsys)
    assert "loss:" in out
    assert "The cat" in out


def test_keyword_generation(capsys):
    out = _run_example("keyword_generation", capsys)
    assert "lantern" in out and "harbor" in out
