"""Tests for decoding policies (repro.lm.decoding)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lm.decoding import GREEDY, UNRESTRICTED, DecodingPolicy


def _logprobs(probs):
    p = np.asarray(probs, dtype=float)
    return np.log(p / p.sum())


class TestTopK:
    def test_keeps_exactly_k(self):
        lp = _logprobs([0.5, 0.3, 0.1, 0.06, 0.04])
        mask = DecodingPolicy(top_k=2).allowed_mask(lp)
        assert mask.sum() == 2
        assert mask[0] and mask[1]

    def test_k_larger_than_vocab_keeps_all(self):
        lp = _logprobs([0.5, 0.5])
        assert DecodingPolicy(top_k=40).allowed_mask(lp).all()

    def test_greedy_is_top1(self):
        lp = _logprobs([0.2, 0.5, 0.3])
        mask = GREEDY.allowed_mask(lp)
        assert mask.sum() == 1 and mask[1]

    def test_ties_at_threshold_keep_exactly_k(self):
        lp = _logprobs([0.25, 0.25, 0.25, 0.25])
        assert DecodingPolicy(top_k=2).allowed_mask(lp).sum() == 2

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            DecodingPolicy(top_k=0)


class TestTopP:
    def test_nucleus_cut(self):
        lp = _logprobs([0.6, 0.3, 0.05, 0.05])
        mask = DecodingPolicy(top_p=0.8).allowed_mask(lp)
        assert mask[0] and mask[1]
        assert not mask[2] and not mask[3]

    def test_p_one_keeps_all(self):
        lp = _logprobs([0.7, 0.2, 0.1])
        assert DecodingPolicy(top_p=1.0).allowed_mask(lp).all()

    def test_always_keeps_argmax(self):
        lp = _logprobs([0.9, 0.1])
        mask = DecodingPolicy(top_p=0.01).allowed_mask(lp)
        assert mask[0]

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            DecodingPolicy(top_p=0.0)
        with pytest.raises(ValueError):
            DecodingPolicy(top_p=1.5)


class TestTemperature:
    def test_scaled_logprobs_renormalise(self):
        lp = _logprobs([0.8, 0.2])
        scaled = DecodingPolicy(temperature=2.0).scaled_logprobs(lp)
        assert abs(np.exp(scaled).sum() - 1.0) < 1e-9

    def test_high_temperature_flattens(self):
        lp = _logprobs([0.9, 0.1])
        scaled = DecodingPolicy(temperature=10.0).scaled_logprobs(lp)
        gap = scaled[0] - scaled[1]
        assert gap < (lp[0] - lp[1])

    def test_temperature_one_is_identity(self):
        lp = _logprobs([0.6, 0.4])
        assert DecodingPolicy(temperature=1.0).scaled_logprobs(lp) is lp

    def test_invalid_temperature_rejected(self):
        with pytest.raises(ValueError):
            DecodingPolicy(temperature=0.0)


class TestFiltered:
    def test_filtered_renormalises_over_support(self):
        lp = _logprobs([0.5, 0.3, 0.2])
        out = DecodingPolicy(top_k=2).filtered_logprobs(lp)
        assert np.isneginf(out[2])
        assert abs(np.exp(out[:2]).sum() - 1.0) < 1e-9

    def test_unrestricted_keeps_everything(self):
        lp = _logprobs([0.4, 0.3, 0.3])
        assert UNRESTRICTED.allowed_mask(lp).all()

    def test_filters_compose(self):
        lp = _logprobs([0.4, 0.3, 0.15, 0.1, 0.05])
        mask = DecodingPolicy(top_k=4, top_p=0.7).allowed_mask(lp)
        # top-p alone keeps {0,1}; top-k alone keeps {0..3}.
        assert mask[0] and mask[1]
        assert not mask[4]
        assert mask.sum() == 2


@settings(max_examples=100, deadline=None)
@given(
    probs=st.lists(st.floats(0.001, 1.0), min_size=2, max_size=30),
    k=st.integers(1, 8),
)
def test_topk_mask_size_property(probs, k):
    lp = _logprobs(probs)
    mask = DecodingPolicy(top_k=k).allowed_mask(lp)
    assert mask.sum() == min(k, len(probs))
    # Every kept token is at least as likely as every dropped token.
    if mask.sum() < len(probs):
        assert lp[mask].min() >= lp[~mask].max() - 1e-12


@settings(max_examples=100, deadline=None)
@given(
    probs=st.lists(st.floats(0.001, 1.0), min_size=2, max_size=30),
    p=st.floats(0.05, 1.0),
)
def test_topp_keeps_minimal_covering_set(probs, p):
    lp = _logprobs(probs)
    mask = DecodingPolicy(top_p=p).allowed_mask(lp)
    kept = np.exp(lp[mask]).sum()
    assert kept >= p - 1e-9 or mask.all()
