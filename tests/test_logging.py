"""PR 10 satellite tests for the JSONL result sinks.

* ``read_matches`` tolerates a *torn trailing line* (a writer killed
  mid-append) by skipping it with a warning; ``strict=True`` raises; a
  malformed line anywhere before the end always raises.
* ``MatchWriter(flush_every=...)`` controls write visibility: the default
  of 1 makes every match immediately observable (``tail -f``/service
  streaming), larger values batch.
* ``tee_matches`` closes its writer on generator exhaustion, explicit
  close, and GC — no dangling half-flushed logs from abandoned tees.
"""

from __future__ import annotations

import gc
import json

import pytest

from repro.core.logging import MatchWriter, read_matches, tee_matches
from repro.core.results import MatchResult


def _match(text: str, logprob: float = -1.25) -> MatchResult:
    return MatchResult(
        tokens=(1, 2, 3),
        text=text,
        logprob=logprob,
        total_logprob=logprob,
        canonical=True,
        prefix_text="",
    )


class TestTornTrailingLine:
    def _write_then_tear(self, path, n=3):
        with MatchWriter(path) as writer:
            for i in range(n):
                writer.write(_match(f"m{i}", -float(i + 1)))
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"text": "torn", "tok')  # no newline: mid-append kill
        return n

    def test_torn_tail_skipped_with_warning(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        n = self._write_then_tear(path)
        with pytest.warns(RuntimeWarning, match="torn trailing line"):
            loaded = read_matches(path)
        assert [m.text for m in loaded] == [f"m{i}" for i in range(n)]

    def test_strict_raises_on_torn_tail(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        self._write_then_tear(path)
        with pytest.raises(ValueError, match="malformed JSONL record"):
            read_matches(path, strict=True)

    def test_torn_tail_valid_json_but_not_a_record(self, tmp_path):
        """A tail that parses as JSON but lacks the record keys is still a
        torn tail, not a crash."""
        path = tmp_path / "torn.jsonl"
        with MatchWriter(path) as writer:
            writer.write(_match("good"))
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"text": "half"}\n')
        with pytest.warns(RuntimeWarning):
            loaded = read_matches(path)
        assert [m.text for m in loaded] == ["good"]

    def test_mid_file_corruption_always_raises(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        with MatchWriter(path) as writer:
            writer.write(_match("first"))
        with path.open("a", encoding="utf-8") as handle:
            handle.write("GARBAGE\n")
        with MatchWriter(path) as writer:
            writer.write(_match("last"))
        with pytest.raises(ValueError, match="line 2"):
            read_matches(path)

    def test_clean_file_loads_without_warning(self, tmp_path, recwarn):
        path = tmp_path / "clean.jsonl"
        with MatchWriter(path) as writer:
            writer.write(_match("only"))
        assert [m.text for m in read_matches(path)] == ["only"]
        assert not [w for w in recwarn.list if issubclass(w.category, RuntimeWarning)]


class TestFlushEvery:
    def test_default_flushes_every_write(self, tmp_path):
        path = tmp_path / "live.jsonl"
        writer = MatchWriter(path)
        writer.write(_match("a"))
        # visible before close: what tail -f / a service streamer sees
        assert len(path.read_text().splitlines()) == 1
        writer.write(_match("b"))
        assert len(path.read_text().splitlines()) == 2
        writer.close()

    def test_batched_flush(self, tmp_path):
        path = tmp_path / "batched.jsonl"
        writer = MatchWriter(path, flush_every=3)
        writer.write(_match("a"))
        writer.write(_match("b"))
        # two small records sit in the stdio buffer until the cadence hits
        assert path.read_text() == ""
        writer.write(_match("c"))
        assert len(path.read_text().splitlines()) == 3
        writer.write(_match("d"))
        writer.close()  # close always flushes the remainder
        assert len(path.read_text().splitlines()) == 4

    def test_flush_every_validated(self, tmp_path):
        with pytest.raises(ValueError):
            MatchWriter(tmp_path / "x.jsonl", flush_every=0)


class TestTeeCloses:
    def test_closes_on_exhaustion(self, tmp_path):
        writer = MatchWriter(tmp_path / "tee.jsonl")
        out = list(tee_matches([_match("a"), _match("b")], writer))
        assert len(out) == 2
        assert writer._handle is None  # closed, not just flushed
        assert len(read_matches(tmp_path / "tee.jsonl")) == 2

    def test_closes_on_generator_close(self, tmp_path):
        writer = MatchWriter(tmp_path / "tee.jsonl")
        gen = tee_matches([_match("a"), _match("b"), _match("c")], writer)
        assert next(gen).text == "a"
        gen.close()
        assert writer._handle is None
        assert [m.text for m in read_matches(tmp_path / "tee.jsonl")] == ["a"]

    def test_closes_on_gc(self, tmp_path):
        writer = MatchWriter(tmp_path / "tee.jsonl", flush_every=10)
        gen = tee_matches([_match("a"), _match("b")], writer)
        next(gen)
        del gen
        gc.collect()
        assert writer._handle is None
        # flush_every=10 buffered the record; close flushed it anyway
        assert [m.text for m in read_matches(tmp_path / "tee.jsonl")] == ["a"]


class TestRoundTripPrecision:
    def test_float_round_trip_is_bit_identical(self, tmp_path):
        ugly = -123.45678901234567890123  # more precision than repr shows
        path = tmp_path / "prec.jsonl"
        with MatchWriter(path) as writer:
            writer.write(_match("x", ugly))
        [loaded] = read_matches(path)
        assert loaded.logprob == ugly
        assert json.loads(path.read_text())["logprob"] == ugly
