"""Tests for the LM interface and logits cache (repro.lm.base)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lm.base import LanguageModel, LogitsCache
from repro.lm.decoding import DecodingPolicy


class CountingModel(LanguageModel):
    """Deterministic toy model that counts its forward passes."""

    def __init__(self, vocab_size=8):
        self.vocab_size = vocab_size
        self.eos_id = vocab_size - 1
        self.max_sequence_length = 32
        self.calls = 0

    def logprobs(self, context):
        self.calls += 1
        # Distribution depends on context length so caching is observable.
        base = np.arange(1.0, self.vocab_size + 1.0) + (len(context) % 3)
        return np.log(base / base.sum())


class TestLogitsCache:
    def test_repeat_lookup_hits_cache(self):
        model = CountingModel()
        cache = LogitsCache(model, capacity=16)
        cache.logprobs((1, 2))
        cache.logprobs((1, 2))
        assert model.calls == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_different_contexts_miss(self):
        model = CountingModel()
        cache = LogitsCache(model, capacity=16)
        cache.logprobs((1,))
        cache.logprobs((2,))
        assert model.calls == 2

    def test_lru_eviction(self):
        model = CountingModel()
        cache = LogitsCache(model, capacity=2)
        cache.logprobs((1,))
        cache.logprobs((2,))
        cache.logprobs((3,))  # evicts (1,)
        cache.logprobs((1,))
        assert model.calls == 4

    def test_hit_rate(self):
        model = CountingModel()
        cache = LogitsCache(model, capacity=4)
        assert cache.hit_rate == 0.0
        cache.logprobs(())
        cache.logprobs(())
        assert cache.hit_rate == 0.5

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            LogitsCache(CountingModel(), capacity=0)


class TestGenerate:
    def test_respects_max_new_tokens(self, rng):
        model = CountingModel()
        out = model.generate([0], rng, max_new_tokens=5)
        assert len(out) <= 5

    def test_policy_restricts_sampling(self, rng):
        model = CountingModel()
        policy = DecodingPolicy(top_k=1)
        out = model.generate([0], rng, max_new_tokens=4, policy=policy, stop_at_eos=False)
        # Greedy on this model always picks the max-index token.
        assert all(t == model.vocab_size - 1 for t in out)

    def test_stop_at_eos(self, rng):
        model = CountingModel()
        out = model.generate([0], rng, max_new_tokens=20, policy=DecodingPolicy(top_k=1))
        # Greedy immediately picks EOS (the most likely token) and stops.
        assert out == []


class TestSequenceLogprob:
    def test_empty_sequence_is_zero(self):
        assert CountingModel().sequence_logprob([]) == 0.0

    def test_additivity(self):
        model = CountingModel()
        a = model.sequence_logprob([1, 2])
        b = model.sequence_logprob([1]) + model.sequence_logprob([2], prefix=[1])
        assert abs(a - b) < 1e-12
