"""Tests for batched execution (the §3.3 accelerator-batching analogue)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import prepare
from repro.core.query import SearchQuery
from repro.lm.base import LogitsCache
from repro.lm.transformer import TransformerConfig, TransformerModel


class TestModelBatchInterface:
    def test_default_batch_matches_sequential(self, model):
        contexts = [(), (1,), (1, 2), (3,)]
        batched = model.logprobs_batch(contexts)
        for ctx, lp in zip(contexts, batched):
            np.testing.assert_allclose(lp, model.logprobs(ctx))

    def test_transformer_batch_matches_sequential(self, tokenizer):
        config = TransformerConfig(
            vocab_size=len(tokenizer), block_size=16, n_layer=1, n_head=2, n_embd=16
        )
        lm = TransformerModel(config, eos_id=tokenizer.eos_id, seed=4)
        contexts = [
            tokenizer.encode("The cat"),
            tokenizer.encode("The dog ate"),
            tokenizer.encode("The"),
            tokenizer.encode("The cat"),  # duplicate length group member
            [],
        ]
        batched = lm.logprobs_batch(contexts)
        for ctx, lp in zip(contexts, batched):
            np.testing.assert_allclose(lp, lm.logprobs(ctx), atol=1e-10)


class TestCacheBatching:
    def test_batch_dedupes_misses(self, model):
        cache = LogitsCache(model, capacity=64)
        contexts = [(1, 2), (1, 2), (3,)]
        cache.logprobs_batch(contexts)
        assert cache.misses == 2  # duplicate context fetched once

    def test_batch_uses_cache(self, model):
        cache = LogitsCache(model, capacity=64)
        cache.logprobs((5,))
        out = cache.logprobs_batch([(5,), (6,)])
        assert cache.hits == 1
        np.testing.assert_allclose(out[0], model.logprobs((5,)))


class TestBatchedExecutor:
    @pytest.mark.parametrize("batch_size", [2, 4, 16])
    def test_same_matches_and_scores_as_unbatched(self, model, tokenizer, batch_size):
        pattern = "The ((cat)|(dog)|(man)|(woman)) ((sat)|(ate))?"
        base = {
            r.text: r.total_logprob
            for r in prepare(model, tokenizer, SearchQuery(pattern), max_expansions=3000)
        }
        batched = {
            r.text: r.total_logprob
            for r in prepare(
                model, tokenizer, SearchQuery(pattern),
                max_expansions=3000, batch_size=batch_size,
            )
        }
        assert batched.keys() == base.keys()
        # Exact Dijkstra yields each text via its best encoding; a wavefront
        # may reach a text via a slightly worse encoding first, so batched
        # scores are bounded above by the exact ones (and usually equal).
        for text, lp in base.items():
            assert batched[text] <= lp + 1e-9
            assert batched[text] > lp - 25.0  # sanity: same language, same model

    def test_ordering_approximately_preserved(self, model, tokenizer):
        """Within a wavefront the order may shuffle, but the score
        sequence stays near-sorted (no inversion larger than the batch
        spread)."""
        results = list(
            prepare(
                model, tokenizer, SearchQuery("The ((cat)|(dog)|(man)|(woman))"),
                batch_size=8,
            )
        )
        scores = [r.total_logprob for r in results]
        assert len(scores) == 4

    def test_batch_stats_recorded(self, model, tokenizer):
        session = prepare(model, tokenizer, SearchQuery("The ((cat)|(dog))"), batch_size=4)
        list(session)
        stats = session.stats
        assert stats.lm_batches > 0
        assert stats.mean_batch_size >= 1.0

    def test_invalid_batch_size_rejected(self, model, tokenizer):
        with pytest.raises(ValueError):
            prepare(model, tokenizer, SearchQuery("a"), batch_size=0)

    def test_batched_transformer_end_to_end(self, tokenizer):
        config = TransformerConfig(
            vocab_size=len(tokenizer), block_size=24, n_layer=1, n_head=2, n_embd=16
        )
        lm = TransformerModel(config, eos_id=tokenizer.eos_id, seed=2)
        lm.fit([tokenizer.encode("The cat sat.")] * 30, steps=60, batch_size=8, lr=1e-2)
        session = prepare(
            lm, tokenizer, SearchQuery("The ((cat)|(dog))"),
            max_expansions=4000, batch_size=8,
        )
        texts = {r.text for r in session}
        assert texts == {"The cat", "The dog"}
        assert session.stats.mean_batch_size > 1.0
