"""Chaos suite: fault injection, worker supervision, interrupt + resume.

The contract under test is the resilience layer's core promise: **failures
change wall-clock, never results**.  Every test drives a fault plan
(:mod:`repro.core.faults`) through the supervised :class:`WorkerPool` or
the :class:`QueryScheduler` and asserts the output is bit-identical to the
no-fault serial run.

* fault matrix — {crash, hang, slow} × {first shard, last shard,
  every-Nth round} × workers {2, 4}, at the pool level;
* worker-error recovery and the degraded in-process fallback;
* scheduler sweeps under injected crashes (``RELM_CHAOS_PIPELINE=1`` runs
  the same sweeps double-buffered — the CI chaos job exercises both);
* deferred SIGINT: an interrupt mid-sweep checkpoints, unlinks every
  pooled shared-memory segment, raises ``KeyboardInterrupt``, and the
  resumed run reproduces the uninterrupted results;
* the acceptance scenario, end-to-end in a subprocess: one worker
  SIGKILLed by a fault, then the parent SIGINTed, then ``resume`` — the
  sorted result set must be byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core.api import search_many
from repro.core.faults import FaultPlan, FaultSpec, InjectedFault
from repro.core.parallel import WorkerPool
from repro.core.query import SearchQuery
from repro.core.scheduler import QueryBudget, QueryScheduler

#: The CI chaos job runs this module twice: once with the plain scheduler
#: loop and once double-buffered (RELM_CHAOS_PIPELINE=1).
PIPELINE = os.environ.get("RELM_CHAOS_PIPELINE") == "1"

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def _contexts(n, depth=3, vocab=300):
    return [[(7 * i + 3 * t) % (vocab - 1) + 1 for t in range(depth)] for i in range(n)]


def _match_key(m):
    return (m.text, float(m.total_logprob), tuple(m.tokens))


def _result_sets(handles):
    return [[_match_key(m) for m in h.results] for h in handles]


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("explode")

    def test_parse_forms(self):
        spec = FaultSpec.parse("crash:1:0")
        assert (spec.kind, spec.round_index, spec.shard) == ("crash", 1, 0)
        spec = FaultSpec.parse("slow:*/2:-1:0.25")
        assert (spec.kind, spec.every, spec.shard, spec.seconds) == ("slow", 2, -1, 0.25)
        spec = FaultSpec.parse("hang:*:0")
        assert spec.round_index is None and spec.every is None
        with pytest.raises(ValueError, match="KIND:ROUND:SHARD"):
            FaultSpec.parse("crash:1")

    def test_matching_rules(self):
        first = FaultSpec("error", round_index=2, shard=0)
        assert first.matches(2, 0, 4, attempt=0)
        assert not first.matches(3, 0, 4, attempt=0)
        assert not first.matches(2, 0, 4, attempt=1)  # retry runs clean
        last = FaultSpec("error", every=3, shard=-1)
        assert last.matches(0, 3, 4, attempt=0)
        assert last.matches(3, 1, 2, attempt=0)
        assert not last.matches(1, 3, 4, attempt=0)

    def test_plan_first_match_wins(self):
        plan = FaultPlan.of(
            FaultSpec("crash", round_index=0, shard=0),
            FaultSpec("error", every=1, shard=0),
        )
        assert plan.directive(0, 0, 2, 0).kind == "crash"
        assert plan.directive(1, 0, 2, 0).kind == "error"
        assert plan.directive(1, 1, 2, 0) is None

    def test_error_fault_raises_injected(self):
        with pytest.raises(InjectedFault):
            FaultSpec("error").execute()


# One spec template per matrix axis value; ``seconds`` only matters for
# hang (sleeps past the deadline) and slow (returns late but in time).
_KIND_ARGS = {
    "crash": {},
    "hang": {"seconds": 30.0},
    "slow": {"seconds": 0.15},
}
_PLACEMENTS = {
    "first_shard": {"round_index": 1, "shard": 0},
    "last_shard": {"round_index": 1, "shard": -1},
    "every_2nd_round": {"every": 2, "shard": 0},
}


class TestFaultMatrix:
    """{crash, hang, slow} × {first, last, every-Nth} × workers {2, 4}:
    every combination recovers and stays bit-identical to serial."""

    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("placement", sorted(_PLACEMENTS))
    @pytest.mark.parametrize("kind", sorted(_KIND_ARGS))
    def test_rows_identical_under_fault(self, model, kind, placement, workers):
        ctxs = _contexts(12, vocab=model.vocab_size)
        serial = model.logprobs_batch(ctxs)
        plan = FaultPlan.of(FaultSpec(kind, **_KIND_ARGS[kind], **_PLACEMENTS[placement]))
        with WorkerPool(
            model,
            workers,
            min_shard_size=1,
            backoff_base=0.01,
            # A deadline is only needed to detect the hang; crash is caught
            # by process death and slow simply returns.  Arming it for the
            # other kinds makes the test timing-sensitive on loaded
            # machines (a busy respawn can miss the deadline and degrade —
            # correct behavior, but not what this matrix pins).
            shard_timeout=2.0 if kind == "hang" else None,
            fault_plan=plan,
        ) as pool:
            for round_index in range(4):
                rows = pool.logprobs_batch(ctxs)
                for a, b in zip(serial, rows):
                    assert np.array_equal(a, b), (kind, placement, workers, round_index)
            assert pool.faults_injected >= 1
            # hang and crash kill the delivery -> the supervisor must have
            # respawned; slow just returns late and needs no recovery.
            if kind in ("crash", "hang"):
                assert pool.respawns >= 1 and pool.retries >= 1
            if kind == "crash":
                # No deadline in play: the one injected crash is retried
                # deterministically and must succeed without degrading.
                assert pool.degraded_shards == 0
            if kind == "slow":
                assert pool.respawns == 0 and pool.retries == 0

    def test_worker_error_recovers(self, model):
        """An in-worker exception (clean "error" message, process alive)
        is retried like a crash and stays bit-identical."""
        ctxs = _contexts(10, vocab=model.vocab_size)
        serial = model.logprobs_batch(ctxs)
        plan = FaultPlan.of(FaultSpec("error", round_index=0, shard=0))
        with WorkerPool(
            model, 2, min_shard_size=1, backoff_base=0.01, fault_plan=plan
        ) as pool:
            rows = pool.logprobs_batch(ctxs)
            assert all(np.array_equal(a, b) for a, b in zip(serial, rows))
            assert pool.retries >= 1

    def test_persistent_crash_degrades_to_in_process(self, model):
        """A shard whose every delivery crashes exhausts ``max_retries``
        and is evaluated in-process — slow, never wrong."""
        ctxs = _contexts(8, vocab=model.vocab_size)
        serial = model.logprobs_batch(ctxs)
        plan = FaultPlan.of(
            FaultSpec("crash", round_index=0, shard=0, attempts=tuple(range(8)))
        )
        with WorkerPool(
            model, 2, min_shard_size=1, max_retries=2, backoff_base=0.01, fault_plan=plan
        ) as pool:
            rows = pool.logprobs_batch(ctxs)
            assert all(np.array_equal(a, b) for a, b in zip(serial, rows))
            assert pool.degraded_shards == 1 and pool.degraded_rounds == 1
            assert pool.respawns >= 3  # every failed delivery respawned
            # The pool is NOT broken: the next round runs normally.
            rows = pool.logprobs_batch(ctxs)
            assert all(np.array_equal(a, b) for a, b in zip(serial, rows))

    def test_stale_late_answer_discarded(self, model):
        """A worker that answers *after* blowing the deadline must not
        poison the retried shard (its message is stale and dropped)."""
        ctxs = _contexts(8, vocab=model.vocab_size)
        serial = model.logprobs_batch(ctxs)
        plan = FaultPlan.of(FaultSpec("slow", round_index=0, shard=0, seconds=1.0))
        with WorkerPool(
            model,
            2,
            min_shard_size=1,
            backoff_base=0.01,
            shard_timeout=0.3,
            fault_plan=plan,
        ) as pool:
            for _ in range(3):
                rows = pool.logprobs_batch(ctxs)
                assert all(np.array_equal(a, b) for a, b in zip(serial, rows))
            assert pool.retries >= 1


WIDE = "The ((cat)|(dog)|(man)|(woman))"
PATTERNS = [WIDE, "The (cat|dog) (ran|sat)", "A (man|woman)"]


class TestSchedulerUnderFaults:
    """search_many sweeps with injected failures match fault-free serial
    sweeps exactly (run twice by CI: plain and RELM_CHAOS_PIPELINE=1)."""

    @pytest.fixture(scope="class")
    def serial(self, model, tokenizer):
        handles = search_many(
            model,
            tokenizer,
            [SearchQuery(p) for p in PATTERNS],
            budget=QueryBudget(max_results=6),
        )
        return _result_sets(handles)

    @pytest.mark.parametrize(
        "plan",
        [
            FaultPlan.of(FaultSpec("crash", round_index=0, shard=0)),
            FaultPlan.of(FaultSpec("error", every=2, shard=-1)),
            FaultPlan.of(
                FaultSpec("crash", round_index=0, shard=0, attempts=(0, 1, 2, 3))
            ),
        ],
        ids=["crash_once", "error_every_2nd", "crash_until_degraded"],
    )
    def test_sweep_identical_under_faults(self, model, tokenizer, serial, plan):
        handles = search_many(
            model,
            tokenizer,
            [SearchQuery(p) for p in PATTERNS],
            budget=QueryBudget(max_results=6),
            concurrency=3,
            workers=2,
            pipeline=PIPELINE,
            min_shard_size=1,
            backoff_base=0.01,
            fault_plan=plan,
        )
        assert _result_sets(handles) == serial

    def test_supervision_counters_surface_in_stats(self, model, tokenizer):
        plan = FaultPlan.of(FaultSpec("crash", round_index=0, shard=0))
        with QueryScheduler(
            model,
            tokenizer,
            concurrency=3,
            workers=2,
            pipeline=PIPELINE,
            min_shard_size=1,
            backoff_base=0.01,
            fault_plan=plan,
        ) as scheduler:
            for p in PATTERNS:
                scheduler.submit(SearchQuery(p), budget=QueryBudget(max_results=4))
            scheduler.run()
            assert scheduler.stats.retries >= 1
            assert scheduler.stats.respawns >= 1
            assert scheduler.stats.degraded_rounds == 0


class _InterruptingScheduler(QueryScheduler):
    """Delivers a real SIGINT to this process after N completed rounds —
    deterministic, unlike a timer, because the signal fires inside
    :meth:`_complete` and run()'s deferred handler sees it at the next
    round boundary."""

    def __init__(self, *args, interrupt_after: int = 3, **kwargs):
        super().__init__(*args, **kwargs)
        self._interrupt_after = interrupt_after

    def _complete(self, inflight):
        super()._complete(inflight)
        if self.stats.rounds == self._interrupt_after:
            os.kill(os.getpid(), signal.SIGINT)


class TestInterruptAndResume:
    def test_sigint_checkpoints_releases_segments_and_resumes(
        self, model, tokenizer, tmp_path
    ):
        """The SIGINT-leak fix and the resume contract in one scenario:
        interrupt mid-sweep -> KeyboardInterrupt raised, checkpoint on
        disk, zero leaked shared-memory segments; resuming reproduces the
        uninterrupted sweep bit-identically."""
        from tests.test_parallel import _segment_exists

        budget = QueryBudget(max_results=6)
        clean = search_many(
            model, tokenizer, [SearchQuery(p) for p in PATTERNS], budget=budget
        )
        path = str(tmp_path / "sweep.ckpt")
        scheduler = _InterruptingScheduler(
            model,
            tokenizer,
            concurrency=3,
            workers=2,
            pipeline=PIPELINE,
            min_shard_size=1,
            checkpoint_path=path,
            interrupt_after=3,
        )
        names = []
        with pytest.raises(KeyboardInterrupt):
            for p in PATTERNS:
                scheduler.submit(SearchQuery(p), budget=budget)
            scheduler.run()
        names = scheduler._pool.segment_names()
        assert scheduler._pool.closed
        assert not any(_segment_exists(n) for n in names), "leaked segments"
        assert os.path.exists(path)
        assert scheduler.stats.checkpoints_written >= 1
        resumed = search_many(
            model,
            tokenizer,
            [SearchQuery(p) for p in PATTERNS],
            budget=budget,
            checkpoint=path,
            resume=True,
        )
        assert _result_sets(resumed) == _result_sets(clean)

    def test_interrupt_without_checkpoint_still_cleans_up(self, model, tokenizer):
        from tests.test_parallel import _segment_exists

        scheduler = _InterruptingScheduler(
            model,
            tokenizer,
            concurrency=3,
            workers=2,
            min_shard_size=1,
            interrupt_after=2,
        )
        with pytest.raises(KeyboardInterrupt):
            for p in PATTERNS:
                scheduler.submit(SearchQuery(p), budget=QueryBudget(max_results=6))
            scheduler.run()
        assert scheduler._pool.closed
        assert not any(_segment_exists(n) for n in scheduler._pool.segment_names())


_DRIVER = """\
import sys

sys.path.insert(0, {src!r})

from repro.core.api import search_many
from repro.core.faults import FaultPlan, FaultSpec
from repro.core.query import SearchQuery
from repro.core.scheduler import QueryBudget
from tests.conftest import build_model, build_tokenizer  # noqa: E402

mode, ckpt = sys.argv[1], sys.argv[2]
tokenizer = build_tokenizer()
model = build_model(tokenizer)
patterns = {patterns!r}
kwargs = dict(
    budget=QueryBudget(max_results=6),
    concurrency=3,
    workers=2,
    pipeline={pipeline!r},
    min_shard_size=1,
    backoff_base=0.01,
    # round 1's first shard crashes its worker (a real SIGKILL), and every
    # parallel round's last shard returns late — stretching the sweep so
    # the parent's SIGINT lands mid-run deterministically.
    fault_plan=FaultPlan.of(
        FaultSpec("crash", round_index=1, shard=0),
        FaultSpec("slow", every=1, shard=-1, seconds=0.05),
    ),
)
try:
    if mode == "clean":
        handles = search_many(model, tokenizer, [SearchQuery(p) for p in patterns], **kwargs)
    elif mode == "interrupted":
        handles = search_many(
            model, tokenizer, [SearchQuery(p) for p in patterns],
            checkpoint=ckpt, checkpoint_every=2, **kwargs,
        )
    else:
        handles = search_many(
            model, tokenizer, [SearchQuery(p) for p in patterns],
            checkpoint=ckpt, checkpoint_every=2, resume=True, **kwargs,
        )
except KeyboardInterrupt:
    sys.exit(130)
for handle in handles:
    for m in handle.results:
        print(f"{{handle.name}}\\t{{m.total_logprob!r}}\\t{{m.text}}")
"""


class TestEndToEndChaos:
    """The acceptance scenario: a ``search_many`` sweep loses a worker to
    SIGKILL, then the parent process to SIGINT; resuming from the
    checkpoint must reproduce the uninterrupted run's sorted result set
    byte-for-byte."""

    def _run(self, script, mode, ckpt, timeout=300):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + os.path.dirname(SRC)
        return subprocess.run(
            [sys.executable, script, mode, ckpt],
            capture_output=True,
            text=True,
            timeout=timeout,
            env=env,
            cwd=os.path.dirname(SRC),
        )

    def test_sigkill_then_sigint_then_resume_is_byte_identical(self, tmp_path):
        script = str(tmp_path / "driver.py")
        ckpt = str(tmp_path / "sweep.ckpt")
        with open(script, "w") as fh:
            fh.write(_DRIVER.format(src=SRC, patterns=PATTERNS, pipeline=PIPELINE))
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + os.path.dirname(SRC)

        clean = self._run(script, "clean", ckpt)
        assert clean.returncode == 0, clean.stderr

        proc = subprocess.Popen(
            [sys.executable, script, "interrupted", ckpt],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=os.path.dirname(SRC),
        )
        try:
            deadline = time.monotonic() + 240.0
            while not os.path.exists(ckpt) and time.monotonic() < deadline:
                if proc.poll() is not None:
                    break
                time.sleep(0.02)
            assert os.path.exists(ckpt), "sweep never wrote a checkpoint"
            if proc.poll() is None:
                proc.send_signal(signal.SIGINT)
            _, err = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        # 130 = interrupted mid-run (the designed scenario); 0 means the
        # sweep finished before SIGINT landed — resume still must work.
        assert proc.returncode in (130, 0), err

        resumed = self._run(script, "resume", ckpt)
        assert resumed.returncode == 0, resumed.stderr
        assert sorted(resumed.stdout.splitlines()) == sorted(clean.stdout.splitlines())
        assert clean.stdout.strip(), "clean run produced no matches"
