"""Property suite for char-level ``DFA.minimized()`` / ``DFA.trimmed()``.

The token-level minimization pass (``TokenAutomaton.minimized``) is the
same partition-refinement algorithm lifted to token alphabets, so these
char-level laws — language preservation, idempotence, minimality — are the
foundation the compile-time fast path builds on.  Each law is checked two
ways: hypothesis-generated random DFAs (arbitrary transition tables, not
just regex-reachable ones) and a seeded grid of ReLM-dialect regexes.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.dfa import DFA
from repro.regex import compile_dfa

ALPHABET = "ab"
MAX_LEN = 6

#: Seeded regexes covering the shapes the engine compiles: alternation,
#: closure, classes, bounded repetition, literals, and empty languages.
SEED_PATTERNS = [
    "a",
    "ab",
    "a|b",
    "a*",
    "(ab)*",
    "a+b",
    "(a|b)(a|b)",
    "a(b|c)*",
    "[abc]{2,4}",
    "abc|abd|abe",
    "(cat|car|cart)s?",
    "x[0-9]{1,3}",
    "(aa|ab|ba|bb)*",
    "a{3}",
    "(a|b)*abb",
]


def random_dfa(rng: random.Random, num_states: int, alphabet: str) -> DFA:
    """An arbitrary (possibly disconnected, possibly empty-language) DFA."""
    states = list(range(num_states))
    transitions: dict[int, dict[str, int]] = {}
    for q in states:
        row = {}
        for ch in alphabet:
            # ~25% missing edges so trap/dead shapes appear.
            if rng.random() < 0.75:
                row[ch] = rng.choice(states)
        transitions[q] = row
    accepting = frozenset(q for q in states if rng.random() < 0.3)
    return DFA(start=0, accepts=accepting, transitions=transitions)


def language(dfa: DFA, max_length: int = MAX_LEN) -> set[str]:
    """Brute-force enumeration of the language up to *max_length*."""
    return set(dfa.enumerate_strings(max_length=max_length))


class TestMinimizedLanguage:
    @settings(max_examples=150, deadline=None)
    @given(st.integers(1, 8), st.randoms(use_true_random=False))
    def test_minimized_preserves_language_random_dfas(self, n, rng):
        dfa = random_dfa(rng, n, ALPHABET)
        assert language(dfa.minimized()) == language(dfa)

    @settings(max_examples=150, deadline=None)
    @given(st.integers(1, 8), st.randoms(use_true_random=False))
    def test_trimmed_preserves_language_random_dfas(self, n, rng):
        dfa = random_dfa(rng, n, ALPHABET)
        assert language(dfa.trimmed()) == language(dfa)

    @pytest.mark.parametrize("pattern", SEED_PATTERNS)
    def test_minimized_preserves_language_seeded_regexes(self, pattern):
        # compile_dfa minimizes by default; build the raw machine.
        raw = compile_dfa(pattern, minimize=False)
        assert language(raw.minimized()) == language(raw)
        assert language(raw.trimmed()) == language(raw)


class TestIdempotence:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(1, 8), st.randoms(use_true_random=False))
    def test_minimize_twice_is_minimize_once(self, n, rng):
        dfa = random_dfa(rng, n, ALPHABET)
        once = dfa.minimized()
        twice = once.minimized()
        assert len(twice.states) == len(once.states)
        assert language(twice) == language(once)

    @settings(max_examples=100, deadline=None)
    @given(st.integers(1, 8), st.randoms(use_true_random=False))
    def test_trim_twice_is_trim_once(self, n, rng):
        dfa = random_dfa(rng, n, ALPHABET)
        once = dfa.trimmed()
        twice = once.trimmed()
        assert len(twice.states) == len(once.states)


class TestMinimality:
    """``minimized()`` must reach the canonical state count.

    The Myhill–Nerode minimum is unique, so any two DFAs for the same
    language minimize to the same number of states.  We cross-check the
    minimized machine against an independently-built DFA for the same
    (finite slice of the) language.
    """

    @pytest.mark.parametrize("pattern", SEED_PATTERNS)
    def test_minimized_never_larger_than_raw(self, pattern):
        raw = compile_dfa(pattern, minimize=False)
        assert len(raw.minimized().states) <= len(raw.trimmed().states or [0])

    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 6), st.randoms(use_true_random=False))
    def test_equal_languages_minimize_to_equal_state_counts(self, n, rng):
        dfa = random_dfa(rng, n, ALPHABET)
        if dfa.has_cycle():
            # from_strings only rebuilds finite languages exactly.
            return
        words = language(dfa, max_length=2 * n)
        if not words:
            return
        rebuilt = DFA.from_strings(words)
        assert len(dfa.minimized().states) == len(rebuilt.minimized().states)

    def test_known_minimal_example(self):
        # (a|b)*abb has the textbook 4-state minimal DFA.
        raw = compile_dfa("(a|b)*abb", minimize=False)
        assert len(raw.minimized().states) == 4

    def test_dead_states_removed(self):
        # A state that can never reach acceptance must be trimmed away.
        dfa = DFA(
            start=0,
            accepts=frozenset({1}),
            transitions={0: {"a": 1, "b": 2}, 1: {}, 2: {"a": 2}},
        )
        trimmed = dfa.trimmed()
        assert 2 not in {dst for row in trimmed.transitions.values() for dst in row.values()}
        assert language(trimmed) == language(dfa)
