"""Property-based tests of the multi-query scheduler's serial equivalence.

For random mixes of regex patterns, traversal strategies, seeds,
concurrency caps, and result budgets, interleaving queries through the
scheduler must never change what any query produces: under round-robin
fairness each query's match stream (texts, tokens, log-probabilities,
order) is identical to a standalone serial run, and the scheduler's merged
stream is exactly a permutation of the serial per-query streams that
preserves each query's internal order.

Run in CI with a pinned seed::

    pytest -q tests/test_scheduler_properties.py --hypothesis-seed=0
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import prepare
from repro.core.query import QuerySearchStrategy, SearchQuery
from repro.core.scheduler import QueryBudget, QueryScheduler
from repro.lm.ngram import NGramModel
from repro.tokenizers.bpe import train_bpe

_CORPUS = [
    "the cat sat on the mat",
    "a dog ate the food",
    "cats and dogs ran fast",
] * 15

_TOK = train_bpe(_CORPUS, vocab_size=200)
_MODEL = NGramModel.train_on_text(_CORPUS, _TOK, order=4, alpha=0.2)

_WORDS = ["cat", "dog", "mat", "the", "a", "sat", "ran"]
_atom = st.sampled_from(_WORDS)
_pattern = st.one_of(
    st.lists(_atom, min_size=2, max_size=4, unique=True).map(
        lambda ws: "(" + "|".join(f"({w})" for w in ws) + ")"
    ),
    st.tuples(_atom, _atom).map(lambda t: f"{t[0]} {t[1]}"),
    st.tuples(_atom, _atom, _atom).map(lambda t: f"{t[0]} (({t[1]})|({t[2]}))"),
)

_query = st.one_of(
    st.tuples(_pattern, st.integers(0, 1000)).map(
        lambda t: SearchQuery(t[0], seed=t[1])
    ),
    st.tuples(_pattern, st.integers(0, 1000)).map(
        lambda t: SearchQuery(
            t[0],
            strategy=QuerySearchStrategy.RANDOM_SAMPLING,
            num_samples=6,
            seed=t[1],
        )
    ),
)

_LIMIT = 12


def _serial(query):
    matches = []
    session = prepare(
        _MODEL, _TOK, query, max_expansions=2000, max_attempts=200
    )
    for match in session:
        matches.append(match)
        if len(matches) >= _LIMIT:
            break
    return matches


def _row(match):
    return (match.text, match.tokens, match.logprob, match.total_logprob)


@settings(max_examples=20, deadline=None)
@given(
    queries=st.lists(_query, min_size=2, max_size=4),
    concurrency=st.integers(1, 4),
)
def test_scheduled_streams_equal_serial_streams(queries, concurrency):
    """Every query's scheduled output is bit-identical to its serial run,
    for any mix of traversals and any concurrency cap."""
    serial = [_serial(q) for q in queries]
    scheduler = QueryScheduler(
        _MODEL, _TOK, concurrency=concurrency,
        max_expansions=2000, max_attempts=200,
    )
    handles = [
        scheduler.submit(q, budget=QueryBudget(max_results=_LIMIT), name=f"q{i}")
        for i, q in enumerate(queries)
    ]
    scheduler.run()
    for handle, want in zip(handles, serial):
        assert [_row(m) for m in handle.results] == [_row(m) for m in want]


@settings(max_examples=15, deadline=None)
@given(
    queries=st.lists(_query, min_size=2, max_size=3),
    concurrency=st.integers(1, 3),
)
def test_merged_stream_is_order_preserving_permutation(queries, concurrency):
    """The merged stream holds exactly the union of the serial streams, and
    restricting it to one query recovers that query's serial order."""
    serial = [_serial(q) for q in queries]
    scheduler = QueryScheduler(
        _MODEL, _TOK, concurrency=concurrency, record_history=True,
        max_expansions=2000, max_attempts=200,
    )
    names = [f"q{i}" for i in range(len(queries))]
    for name, query in zip(names, queries):
        scheduler.submit(query, budget=QueryBudget(max_results=_LIMIT), name=name)
    scheduler.run()
    merged = scheduler.merged
    assert len(merged) == sum(len(s) for s in serial)
    for name, want in zip(names, serial):
        projected = [_row(m) for n, m in merged if n == name]
        assert projected == [_row(m) for m in want]


@settings(max_examples=15, deadline=None)
@given(
    queries=st.lists(_query, min_size=2, max_size=3),
    limit=st.integers(1, 4),
)
def test_result_budget_yields_serial_prefix(queries, limit):
    """A ``max_results`` budget truncates each query to exactly the first
    *limit* matches of its serial stream."""
    serial = [_serial(q) for q in queries]
    scheduler = QueryScheduler(
        _MODEL, _TOK, concurrency=len(queries),
        max_expansions=2000, max_attempts=200,
    )
    handles = [
        scheduler.submit(q, budget=QueryBudget(max_results=limit))
        for q in queries
    ]
    scheduler.run()
    for handle, want in zip(handles, serial):
        assert [_row(m) for m in handle.results] == [_row(m) for m in want[:limit]]
        if len(want) > limit:
            assert handle.truncated and handle.truncated_reason == "max_results"
