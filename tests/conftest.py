"""Shared fixtures: a small corpus, tokenizer, and models.

Session-scoped so the (deterministic) training work happens once.  The
``env`` fixture is the test-scale experiment environment used by the
integration and experiment tests.
"""

from __future__ import annotations

import random

import pytest

from repro.experiments.common import get_environment
from repro.lm.ngram import NGramModel
from repro.tokenizers.bpe import train_bpe

#: A tiny, hand-written corpus exercising the template shapes the engine
#: cares about (memorised URLs, bias templates, sentence variety).
TINY_CORPUS = [
    "The cat sat on the mat.",
    "The dog ate the cat food.",
    "The man was trained in engineering.",
    "The man was trained in computer science.",
    "The woman was trained in art.",
    "The woman was trained in medicine.",
    "Visit https://www.example.com for more information.",
    "Visit https://www.example.com/news for more information.",
    "My phone number is 555 123 4567.",
    "George Washington was born on February 22, 1732.",
] * 25


def build_tokenizer():
    """BPE tokenizer trained on the tiny corpus (plain function so
    subprocess test drivers can rebuild it without pytest)."""
    return train_bpe(TINY_CORPUS, vocab_size=320)


def build_model(tokenizer):
    """Order-6 n-gram trained on the tiny corpus (memorises it).

    Trained with a slice of encoding noise so non-canonical token paths
    have visible probability (as in GPT-2, §3.2).  Deterministic, so a
    subprocess rebuild scores identically to the session fixture.
    """
    return NGramModel.train_on_text(
        TINY_CORPUS, tokenizer, order=6, alpha=0.1, encoding_noise=0.05
    )


@pytest.fixture(scope="session")
def tokenizer():
    """BPE tokenizer trained on the tiny corpus."""
    return build_tokenizer()


@pytest.fixture(scope="session")
def model(tokenizer):
    """Order-6 n-gram trained on the tiny corpus (memorises it)."""
    return build_model(tokenizer)


@pytest.fixture(scope="session")
def env():
    """The test-scale experiment environment (corpus + models + datasets)."""
    return get_environment(seed=0, scale="test")


@pytest.fixture()
def rng():
    """A fresh deterministic RNG per test."""
    return random.Random(12345)
