"""Unit tests for the NFA layer (repro.automata.nfa)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.nfa import NFA, nfa_from_ast
from repro.regex import ast_nodes as ast
from repro.regex.parser import parse


class TestEpsilonClosure:
    def test_reflexive(self):
        nfa = NFA(start=0, accepts=set())
        nfa.num_states = 1
        assert nfa.epsilon_closure({0}) == frozenset({0})

    def test_transitive(self):
        nfa = NFA(start=0, accepts=set())
        nfa.num_states = 4
        nfa.add_epsilon(0, 1)
        nfa.add_epsilon(1, 2)
        nfa.add_epsilon(2, 3)
        assert nfa.epsilon_closure({0}) == frozenset({0, 1, 2, 3})

    def test_cyclic_epsilons_terminate(self):
        nfa = NFA(start=0, accepts=set())
        nfa.num_states = 2
        nfa.add_epsilon(0, 1)
        nfa.add_epsilon(1, 0)
        assert nfa.epsilon_closure({0}) == frozenset({0, 1})

    def test_closure_of_set(self):
        nfa = NFA(start=0, accepts=set())
        nfa.num_states = 4
        nfa.add_epsilon(0, 2)
        nfa.add_epsilon(1, 3)
        assert nfa.epsilon_closure({0, 1}) == frozenset({0, 1, 2, 3})


class TestThompsonConstruction:
    def test_empty_set_matches_nothing(self):
        nfa = nfa_from_ast(ast.EmptySet())
        assert not nfa.accepts_string("")
        assert not nfa.accepts_string("a")

    def test_epsilon_matches_empty_only(self):
        nfa = nfa_from_ast(ast.Epsilon())
        assert nfa.accepts_string("")
        assert not nfa.accepts_string("a")

    def test_literal(self):
        nfa = nfa_from_ast(ast.Literal("x"))
        assert nfa.accepts_string("x")
        assert not nfa.accepts_string("")
        assert not nfa.accepts_string("xx")

    def test_star_includes_empty(self):
        nfa = nfa_from_ast(parse("a*"))
        for s in ["", "a", "aaaa"]:
            assert nfa.accepts_string(s)
        assert not nfa.accepts_string("b")

    def test_plus_excludes_empty(self):
        nfa = nfa_from_ast(parse("a+"))
        assert not nfa.accepts_string("")
        assert nfa.accepts_string("aaa")

    def test_repeat_bounds(self):
        nfa = nfa_from_ast(parse("a{2,3}"))
        assert not nfa.accepts_string("a")
        assert nfa.accepts_string("aa")
        assert nfa.accepts_string("aaa")
        assert not nfa.accepts_string("aaaa")

    def test_repeat_zero_times(self):
        nfa = nfa_from_ast(parse("a{0}"))
        assert nfa.accepts_string("")
        assert not nfa.accepts_string("a")

    def test_unknown_node_rejected(self):
        class Bogus(ast.RegexNode):
            pass

        with pytest.raises(TypeError):
            nfa_from_ast(Bogus())


class TestLiteralValidation:
    def test_multichar_literal_rejected(self):
        with pytest.raises(ValueError):
            ast.Literal("ab")

    def test_charclass_coerces_to_frozenset(self):
        node = ast.CharClass({"a", "b"})  # type: ignore[arg-type]
        assert isinstance(node.chars, frozenset)


@settings(max_examples=60, deadline=None)
@given(
    text=st.text(alphabet="ab", max_size=6),
    reps=st.integers(0, 3),
)
def test_star_accepts_exact_repetitions(text, reps):
    nfa = nfa_from_ast(parse("(ab)*"))
    assert nfa.accepts_string("ab" * reps)
    expected = len(text) % 2 == 0 and text == "ab" * (len(text) // 2)
    assert nfa.accepts_string(text) == expected
