"""Differential tests: the executor vs brute-force computation.

For small finite languages, the engine's answers can be checked exactly:

* shortest-path must yield strings in the same order as scoring every
  string in the language by model probability and sorting;
* the random traversal's empirical frequencies must converge to the
  model's normalised conditional probabilities over the language.

These are the strongest end-to-end correctness guarantees in the suite.
"""

from __future__ import annotations

import math
import random
from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import prepare
from repro.core.query import (
    QuerySearchStrategy,
    QueryTokenizationStrategy,
    SearchQuery,
)
from repro.regex import compile_dfa, escape


def _brute_force_ranking(model, tokenizer, pattern, top_k=None, require_eos=False):
    """Score every string in the (finite) language over ALL its encodings
    under the decision rule; return strings sorted by best-encoding
    probability."""
    from repro.lm.decoding import DecodingPolicy

    policy = DecodingPolicy(top_k=top_k) if top_k else None
    dfa = compile_dfa(pattern)
    scored = []
    for text in dfa.enumerate_strings():
        best = None
        for tokens in _all_encodings(tokenizer, text):
            lp = _path_logprob(model, tokens, policy, require_eos)
            if lp is not None and (best is None or lp > best):
                best = lp
        if best is not None:
            scored.append((best, text))
    scored.sort(key=lambda pair: -pair[0])
    return scored


def _all_encodings(tokenizer, text):
    """Enumerate every token segmentation of *text* (exponential; keep
    texts short)."""
    vocab = tokenizer.vocab
    results = []

    def rec(rest, acc):
        if not rest:
            results.append(tuple(acc))
            return
        for end in range(1, len(rest) + 1):
            piece = rest[:end]
            if piece in vocab:
                acc.append(vocab.id_of(piece))
                rec(rest[end:], acc)
                acc.pop()

    rec(text, [])
    return results


def _path_logprob(model, tokens, policy, require_eos):
    total = 0.0
    context = []
    for tok in tokens:
        lp = model.logprobs(context)
        if policy is not None:
            if not policy.allowed_mask(lp)[tok]:
                return None
            lp = policy.scaled_logprobs(lp)
        total += float(lp[tok])
        context.append(tok)
    if require_eos:
        lp = model.logprobs(context)
        if policy is not None:
            if not policy.allowed_mask(lp)[model.eos_id]:
                return None
            lp = policy.scaled_logprobs(lp)
        total += float(lp[model.eos_id])
    return total


def _assert_same_ranking(got, expected):
    """Engine output equals brute-force ranking, modulo exact-tie order."""
    assert {r.text for r in got} == {t for _, t in expected}
    brute_scores = {t: lp for lp, t in expected}
    engine_scores = [r.total_logprob for r in got]
    # Each string scored identically, and the yield order is non-increasing.
    for r in got:
        assert r.total_logprob == pytest.approx(brute_scores[r.text], abs=1e-9)
    assert all(a >= b - 1e-9 for a, b in zip(engine_scores, engine_scores[1:]))


class TestShortestPathAgainstBruteForce:
    @pytest.mark.parametrize(
        "pattern",
        [
            "The ((cat)|(dog))",
            "The ((cat)|(dog)|(man)|(woman))",
            "The (cat|dog) ((sat)|(ate))",
            "a|b|ab",
        ],
    )
    def test_order_matches_exhaustive_scoring(self, model, tokenizer, pattern):
        expected = _brute_force_ranking(model, tokenizer, pattern)
        got = list(prepare(model, tokenizer, SearchQuery(pattern)))
        _assert_same_ranking(got, expected)

    def test_order_matches_under_topk(self, model, tokenizer):
        pattern = "The ((cat)|(dog)|(man)|(woman))"
        expected = _brute_force_ranking(model, tokenizer, pattern, top_k=5)
        got = list(prepare(model, tokenizer, SearchQuery(pattern, top_k=5)))
        _assert_same_ranking(got, expected)

    def test_order_matches_with_eos(self, model, tokenizer):
        pattern = "The ((cat)|(dog))"
        expected = _brute_force_ranking(model, tokenizer, pattern, require_eos=True)
        got = list(prepare(model, tokenizer, SearchQuery(pattern, require_eos=True)))
        _assert_same_ranking(got, expected)


class TestRandomSamplingAgainstExactProbabilities:
    def test_frequencies_track_conditionals(self, model, tokenizer):
        """Empirical sample frequencies over a 2-string language match the
        model's normalised probabilities within binomial noise."""
        pattern = "The ((cat)|(dog))"
        # Exact probability of each string under canonical-encoding,
        # EOS-disambiguated sampling is hard to write in closed form, so
        # check a coarser invariant: frequency ordering matches probability
        # ordering, and both strings appear.
        scored = dict(
            (t, lp) for lp, t in _brute_force_ranking(model, tokenizer, pattern)
        )
        query = SearchQuery(
            pattern,
            strategy=QuerySearchStrategy.RANDOM_SAMPLING,
            num_samples=500,
            seed=9,
        )
        counts = Counter(r.text for r in prepare(model, tokenizer, query))
        assert set(counts) == {"The cat", "The dog"}
        more_likely = max(scored, key=scored.get)
        assert counts[more_likely] >= counts[min(scored, key=scored.get)] - 30

    def test_every_member_reachable(self, model, tokenizer):
        query = SearchQuery(
            "The ((cat)|(dog)|(man)|(woman))",
            strategy=QuerySearchStrategy.RANDOM_SAMPLING,
            num_samples=400,
            seed=2,
        )
        texts = {r.text for r in prepare(model, tokenizer, query)}
        assert texts == {"The cat", "The dog", "The man", "The woman"}


@settings(max_examples=15, deadline=None)
@given(
    words=st.lists(
        st.sampled_from(["cat", "dog", "mat", "food", "man", "woman"]),
        min_size=2,
        max_size=4,
        unique=True,
    )
)
def test_property_shortest_path_is_argmax(words):
    """For arbitrary small disjunction languages, the first shortest-path
    result is the brute-force argmax."""
    from tests.conftest import TINY_CORPUS
    from repro.lm.ngram import NGramModel
    from repro.tokenizers.bpe import train_bpe

    tokenizer = _CACHED["tok"]
    model = _CACHED["model"]
    pattern = "The (" + "|".join(f"({w})" for w in words) + ")"
    expected = _brute_force_ranking(model, tokenizer, pattern)
    first = next(iter(prepare(model, tokenizer, SearchQuery(pattern))))
    # The first yield must score as well as the brute-force argmax (tie-safe).
    assert first.total_logprob == pytest.approx(expected[0][0], abs=1e-9)


def _build_cache():
    from tests.conftest import TINY_CORPUS
    from repro.lm.ngram import NGramModel
    from repro.tokenizers.bpe import train_bpe

    tok = train_bpe(TINY_CORPUS, vocab_size=320)
    model = NGramModel.train_on_text(TINY_CORPUS, tok, order=6, alpha=0.1)
    return {"tok": tok, "model": model}


_CACHED = _build_cache()
