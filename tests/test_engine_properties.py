"""Property-based tests of engine invariants over random patterns.

For arbitrary patterns from a restricted generator, every match the
engine yields — by either traversal — must (1) decode into the regex's
language, (2) carry a correctly-scored log-probability, and (3) respect
the decision rule at every non-prefix step.
"""

from __future__ import annotations

import re as pyre

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import prepare
from repro.core.query import QuerySearchStrategy, SearchQuery
from repro.lm.decoding import DecodingPolicy
from repro.lm.ngram import NGramModel
from repro.tokenizers.bpe import train_bpe

_CORPUS = [
    "the cat sat on the mat",
    "a dog ate the food",
    "cats and dogs ran fast",
] * 15

_TOK = train_bpe(_CORPUS, vocab_size=200)
_MODEL = NGramModel.train_on_text(_CORPUS, _TOK, order=4, alpha=0.2)

# Patterns over corpus-adjacent words keep languages small but non-trivial.
_WORDS = ["cat", "dog", "mat", "the", "a", "sat", "ran"]
_atom = st.sampled_from(_WORDS)
_pattern = st.one_of(
    st.lists(_atom, min_size=2, max_size=4, unique=True).map(
        lambda ws: "(" + "|".join(f"({w})" for w in ws) + ")"
    ),
    st.tuples(_atom, _atom).map(lambda t: f"{t[0]} {t[1]}"),
    st.tuples(_atom, _atom, _atom).map(lambda t: f"{t[0]} (({t[1]})|({t[2]}))"),
    _atom.map(lambda w: f"{w}s?"),
)


@settings(max_examples=40, deadline=None)
@given(pattern=_pattern)
def test_shortest_path_matches_are_members(pattern):
    compiled = pyre.compile(pattern)
    session = prepare(_MODEL, _TOK, SearchQuery(pattern), max_expansions=2000)
    count = 0
    for match in session:
        assert compiled.fullmatch(match.text), (pattern, match.text)
        count += 1
        if count >= 10:
            break


@settings(max_examples=30, deadline=None)
@given(pattern=_pattern, seed=st.integers(0, 1000))
def test_random_matches_are_members(pattern, seed):
    compiled = pyre.compile(pattern)
    query = SearchQuery(
        pattern,
        strategy=QuerySearchStrategy.RANDOM_SAMPLING,
        num_samples=8,
        seed=seed,
    )
    session = prepare(_MODEL, _TOK, query, max_attempts=200)
    for match in session:
        assert compiled.fullmatch(match.text), (pattern, match.text)


@settings(max_examples=30, deadline=None)
@given(pattern=_pattern)
def test_logprob_is_model_score(pattern):
    session = prepare(_MODEL, _TOK, SearchQuery(pattern), max_expansions=2000)
    for i, match in enumerate(session):
        expected = _MODEL.sequence_logprob(match.tokens)
        assert match.total_logprob == pytest.approx(expected, abs=1e-9)
        if i >= 5:
            break


@settings(max_examples=25, deadline=None)
@given(pattern=_pattern, k=st.integers(1, 6))
def test_topk_decision_rule_respected(pattern, k):
    """Every non-prefix token of every match survives top-k at its step."""
    policy = DecodingPolicy(top_k=k)
    session = prepare(_MODEL, _TOK, SearchQuery(pattern, top_k=k), max_expansions=2000)
    for i, match in enumerate(session):
        context: list[int] = []
        for tok in match.tokens:
            mask = policy.allowed_mask(_MODEL.logprobs(context))
            assert mask[tok], (pattern, match.text, tok)
            context.append(tok)
        if i >= 5:
            break


@settings(max_examples=25, deadline=None)
@given(pattern=_pattern, seed=st.integers(0, 500))
def test_traversals_agree_on_language_support(pattern, seed):
    """Anything random sampling produces, shortest path can also reach
    (same compiled language, same decision rule)."""
    random_query = SearchQuery(
        pattern,
        strategy=QuerySearchStrategy.RANDOM_SAMPLING,
        num_samples=5,
        seed=seed,
    )
    sampled = {
        m.text for m in prepare(_MODEL, _TOK, random_query, max_attempts=100)
    }
    enumerated = {
        m.text
        for m in prepare(_MODEL, _TOK, SearchQuery(pattern), max_expansions=4000)
    }
    assert sampled <= enumerated or not enumerated
