"""Unit tests for the regex parser (repro.regex.parser)."""

from __future__ import annotations

import pytest

from repro.automata.alphabet import ALPHABET_SET, DIGITS, WORD_CHARS
from repro.regex import ast_nodes as ast
from repro.regex.parser import RegexSyntaxError, parse


class TestLiteralsAndConcat:
    def test_single_literal(self):
        assert parse("a") == ast.Literal("a")

    def test_concatenation(self):
        node = parse("abc")
        assert isinstance(node, ast.Concat)
        assert node.parts == (ast.Literal("a"), ast.Literal("b"), ast.Literal("c"))

    def test_empty_pattern_is_epsilon(self):
        assert parse("") == ast.Epsilon()

    def test_space_is_a_literal(self):
        node = parse("a b")
        assert node.parts[1] == ast.Literal(" ")

    def test_grouping_is_transparent(self):
        assert parse("(a)") == ast.Literal("a")
        assert parse("((a))") == ast.Literal("a")


class TestAlternation:
    def test_two_way(self):
        node = parse("a|b")
        assert isinstance(node, ast.Alternation)
        assert node.options == (ast.Literal("a"), ast.Literal("b"))

    def test_n_way_stays_flat(self):
        node = parse("a|b|c|d")
        assert len(node.options) == 4

    def test_precedence_concat_binds_tighter(self):
        node = parse("ab|cd")
        assert isinstance(node, ast.Alternation)
        assert all(isinstance(opt, ast.Concat) for opt in node.options)

    def test_empty_branch_is_epsilon(self):
        node = parse("a|")
        assert node.options[1] == ast.Epsilon()

    def test_paper_query_shape(self):
        node = parse("The ((cat)|(dog))")
        assert isinstance(node, ast.Concat)
        assert isinstance(node.parts[-1], ast.Alternation)


class TestRepetition:
    def test_star(self):
        assert parse("a*") == ast.Star(ast.Literal("a"))

    def test_plus(self):
        assert parse("a+") == ast.Plus(ast.Literal("a"))

    def test_optional(self):
        assert parse("a?") == ast.Optional(ast.Literal("a"))

    def test_star_applies_to_previous_atom_only(self):
        node = parse("ab*")
        assert node.parts[0] == ast.Literal("a")
        assert node.parts[1] == ast.Star(ast.Literal("b"))

    def test_star_applies_to_group(self):
        node = parse("(ab)*")
        assert isinstance(node, ast.Star)
        assert isinstance(node.child, ast.Concat)

    def test_braced_exact(self):
        assert parse("a{3}") == ast.Repeat(ast.Literal("a"), 3, 3)

    def test_braced_range(self):
        assert parse("a{2,5}") == ast.Repeat(ast.Literal("a"), 2, 5)

    def test_braced_open_ended(self):
        assert parse("a{2,}") == ast.Repeat(ast.Literal("a"), 2, None)

    def test_stacked_quantifiers(self):
        node = parse("a*?")
        assert node == ast.Optional(ast.Star(ast.Literal("a")))

    def test_reversed_brace_range_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse("a{5,2}")


class TestCharClasses:
    def test_simple_class(self):
        assert parse("[abc]") == ast.CharClass(frozenset("abc"))

    def test_range(self):
        assert parse("[a-e]") == ast.CharClass(frozenset("abcde"))

    def test_multiple_ranges(self):
        node = parse("[a-cx-z0-1]")
        assert node.chars == frozenset("abcxyz01")

    def test_negation(self):
        node = parse("[^a]")
        assert node.chars == frozenset(ALPHABET_SET) - {"a"}

    def test_literal_dash_at_end(self):
        node = parse("[a-]")
        assert node.chars == frozenset("a-")

    def test_paper_url_class(self):
        node = parse("[a-zA-Z0-9]")
        assert len(node.chars) == 62

    def test_dot_matches_alphabet(self):
        node = parse(".")
        assert node.chars == frozenset(ALPHABET_SET)

    def test_close_bracket_first_is_literal(self):
        node = parse("[]a]")
        assert node.chars == frozenset("]a")

    def test_unterminated_class_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse("[abc")

    def test_reversed_range_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse("[z-a]")


class TestEscapes:
    def test_escaped_metachars(self):
        for ch in "()[]{}|*+?.\\":
            assert parse("\\" + ch) == ast.Literal(ch)

    def test_digit_class(self):
        assert parse("\\d") == ast.CharClass(DIGITS)

    def test_word_class(self):
        assert parse("\\w") == ast.CharClass(WORD_CHARS)

    def test_negated_classes_partition_alphabet(self):
        d, nd = parse("\\d"), parse("\\D")
        assert d.chars | nd.chars == frozenset(ALPHABET_SET)
        assert not d.chars & nd.chars

    def test_newline_escape(self):
        assert parse("\\n") == ast.Literal("\n")

    def test_unknown_escape_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse("\\q")

    def test_dangling_escape_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse("abc\\")


class TestErrors:
    @pytest.mark.parametrize("pattern", ["(a", "a)", "*a", "a{", "a{x}", "+", "?"])
    def test_malformed_patterns_rejected(self, pattern):
        with pytest.raises(RegexSyntaxError):
            parse(pattern)

    def test_error_carries_position(self):
        with pytest.raises(RegexSyntaxError) as excinfo:
            parse("ab[")
        assert excinfo.value.pos >= 2
        assert excinfo.value.pattern == "ab["
