"""Tests for Levenshtein automata (repro.automata.levenshtein)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.text import edit_distance
from repro.automata.levenshtein import levenshtein_expand
from repro.regex import compile_dfa

#: Small alphabet for brute-force comparisons.
_SIGMA = "abc"


def _brute_within(dfa, text: str, k: int, probes: list[str]) -> bool:
    return any(edit_distance(text, p) <= k for p in probes)


class TestDistanceOne:
    def test_membership_examples(self):
        lv = levenshtein_expand(compile_dfa("cat"), 1)
        for s in ["cat", "bat", "cut", "ca", "at", "cats", "coat", "cart"]:
            assert lv.accepts_string(s), s

    def test_non_members(self):
        lv = levenshtein_expand(compile_dfa("cat"), 1)
        for s in ["dog", "c", "catsx", "cr", ""]:
            assert not lv.accepts_string(s), s

    def test_distance_zero_is_identity(self):
        base = compile_dfa("ab|cd")
        lv = levenshtein_expand(base, 0)
        assert sorted(lv.enumerate_strings()) == ["ab", "cd"]

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            levenshtein_expand(compile_dfa("a"), -1)

    def test_expansion_of_alternation(self):
        lv = levenshtein_expand(compile_dfa("(ab)|(cd)"), 1)
        assert lv.accepts_string("ad")  # 1 sub from ab... and from cd
        assert lv.accepts_string("abd")  # insertion
        assert not lv.accepts_string("xy")


class TestDistanceTwo:
    def test_two_edits(self):
        lv = levenshtein_expand(compile_dfa("hello"), 2)
        assert lv.accepts_string("hello")
        assert lv.accepts_string("hxllx")  # two substitutions
        assert lv.accepts_string("hel")  # two deletions
        assert not lv.accepts_string("h")  # four deletions

    def test_budget_composes(self):
        # distance-1 twice == distance-2 membership on probes.
        base = compile_dfa("abc")
        once = levenshtein_expand(base, 1)
        twice = levenshtein_expand(once, 1)
        two = levenshtein_expand(base, 2)
        for probe in ["abc", "ab", "a", "abcde", "xbc", "xyc", "xyz"]:
            assert twice.accepts_string(probe) == two.accepts_string(probe), probe


@settings(max_examples=60, deadline=None)
@given(
    word=st.text(alphabet=_SIGMA, min_size=1, max_size=4),
    probe=st.text(alphabet=_SIGMA, max_size=5),
)
def test_single_word_distance1_matches_edit_distance(word, probe):
    lv = levenshtein_expand(compile_dfa(word), 1)
    assert lv.accepts_string(probe) == (edit_distance(word, probe) <= 1)


@settings(max_examples=30, deadline=None)
@given(
    words=st.lists(
        st.text(alphabet=_SIGMA, min_size=1, max_size=3), min_size=1, max_size=3, unique=True
    ),
    probe=st.text(alphabet=_SIGMA, max_size=4),
)
def test_language_distance1_matches_min_edit_distance(words, probe):
    from repro.automata.dfa import DFA

    lv = levenshtein_expand(DFA.from_strings(words), 1)
    expected = min(edit_distance(w, probe) for w in words) <= 1
    assert lv.accepts_string(probe) == expected
