"""Unit tests for checkpoint serialization and scheduler resume.

:mod:`repro.core.checkpoint` mechanics — atomic writes, version guards,
fingerprint matching — plus the :class:`QueryScheduler` integration:
cadence, cache dump/preload budgets, restoring completed queries, and the
CLI flags.  The full interrupt-at-a-random-round property lives in
``test_checkpoint_properties.py``; the SIGINT path in ``test_faults.py``.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.core.api import search_many
from repro.core.checkpoint import (
    CHECKPOINT_VERSION,
    QuerySnapshot,
    RunCheckpoint,
    load_checkpoint,
    query_fingerprint,
    save_checkpoint,
)
from repro.core.query import SearchQuery
from repro.core.scheduler import QueryBudget, QueryScheduler
from repro.lm.base import LogitsCache

WIDE = "The ((cat)|(dog)|(man)|(woman))"
PATTERNS = [WIDE, "The (cat|dog) (ran|sat)", "A (man|woman)"]


def _result_sets(handles):
    return [
        [(m.text, float(m.total_logprob), tuple(m.tokens)) for m in h.results]
        for h in handles
    ]


class TestSerialization:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        ckpt = RunCheckpoint(
            rounds_completed=7,
            queries=[
                QuerySnapshot(
                    name="q0", fingerprint="ab" * 8, done=True, latency=1.25
                )
            ],
            cache_rows=[((1, 2), np.arange(4.0))],
        )
        save_checkpoint(path, ckpt)
        loaded = load_checkpoint(path)
        assert loaded.rounds_completed == 7
        assert loaded.queries[0].name == "q0" and loaded.queries[0].done
        key, row = loaded.cache_rows[0]
        assert key == (1, 2) and np.array_equal(row, np.arange(4.0))

    def test_write_is_atomic_no_temp_residue(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        save_checkpoint(path, RunCheckpoint())
        save_checkpoint(path, RunCheckpoint(rounds_completed=1))  # overwrite
        assert load_checkpoint(path).rounds_completed == 1
        assert os.listdir(tmp_path) == ["run.ckpt"]  # no .ckpt-*.tmp left

    def test_rejects_non_checkpoint_pickle(self, tmp_path):
        path = str(tmp_path / "bogus.ckpt")
        with open(path, "wb") as fh:
            pickle.dump({"not": "a checkpoint"}, fh)
        with pytest.raises(ValueError, match="not a scheduler checkpoint"):
            load_checkpoint(path)

    def test_rejects_version_mismatch(self, tmp_path):
        path = str(tmp_path / "old.ckpt")
        stale = RunCheckpoint(version=CHECKPOINT_VERSION + 1)
        save_checkpoint(path, stale)
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(path)

    def test_fingerprint_tracks_query_content(self):
        a = SearchQuery(WIDE)
        b = SearchQuery(WIDE)
        c = SearchQuery(WIDE, seed=7)
        assert query_fingerprint(a) == query_fingerprint(b)
        assert query_fingerprint(a) != query_fingerprint(c)
        assert len(query_fingerprint(a)) == 16


class TestCacheDumpPreload:
    def test_dump_unbounded_then_preload_is_lossless(self, model):
        cache = LogitsCache(model, capacity=64)
        ctxs = [[1, 2, i] for i in range(10)]
        cache.logprobs_batch(ctxs)
        rows = cache.dump_rows()
        assert len(rows) == 10
        restored = LogitsCache(model, capacity=64)
        restored.preload(rows)
        assert restored.hits == 0 and restored.misses == 0
        before = (restored.hits, restored.misses)
        restored.logprobs_batch(ctxs)
        assert restored.hits == before[0] + 10  # everything served hot

    def test_dump_budget_keeps_newest(self, model):
        cache = LogitsCache(model, capacity=64)
        cache.logprobs_batch([[1, 2, i] for i in range(10)])
        row_bytes = next(iter(cache._store.values())).nbytes
        rows = cache.dump_rows(max_bytes=3 * row_bytes)
        assert len(rows) == 3
        # Newest three, oldest-first: contexts 7, 8, 9.
        assert [key[-1] for key, _ in rows] == [7, 8, 9]

    def test_dump_tiny_budget_still_yields_one_row(self, model):
        cache = LogitsCache(model, capacity=64)
        cache.logprobs_batch([[1, 2, 3]])
        assert len(cache.dump_rows(max_bytes=1)) == 1


class TestSchedulerCheckpointing:
    def test_cadence_counts_writes(self, model, tokenizer, tmp_path):
        path = str(tmp_path / "run.ckpt")
        with QueryScheduler(
            model, tokenizer, checkpoint_path=path, checkpoint_every=4
        ) as scheduler:
            for p in PATTERNS:
                scheduler.submit(SearchQuery(p), budget=QueryBudget(max_results=4))
            scheduler.run()
            # one write per 4 completed rounds, plus the final flush.
            expected = scheduler.stats.rounds // 4 + 1
            assert scheduler.stats.checkpoints_written in (expected, expected + 1)
        assert os.path.exists(path)

    def test_resume_requires_path(self, model, tokenizer):
        with pytest.raises(ValueError, match="requires a checkpoint_path"):
            QueryScheduler(model, tokenizer, resume=True)

    def test_bad_cadence_rejected(self, model, tokenizer):
        with pytest.raises(ValueError, match="checkpoint_every"):
            QueryScheduler(
                model, tokenizer, checkpoint_path="x.ckpt", checkpoint_every=0
            )

    def test_resume_with_missing_file_is_fresh_run(self, model, tokenizer, tmp_path):
        path = str(tmp_path / "never-written.ckpt")
        handles = search_many(
            model,
            tokenizer,
            [SearchQuery(p) for p in PATTERNS],
            budget=QueryBudget(max_results=4),
            checkpoint=path,
            resume=True,
        )
        assert all(h.done for h in handles)
        assert os.path.exists(path)  # the fresh run then checkpoints itself

    def test_resumed_queries_restore_results_stats_latency(
        self, model, tokenizer, tmp_path
    ):
        budget = QueryBudget(max_results=4)
        clean = search_many(
            model, tokenizer, [SearchQuery(p) for p in PATTERNS], budget=budget
        )
        path = str(tmp_path / "run.ckpt")
        search_many(
            model,
            tokenizer,
            [SearchQuery(p) for p in PATTERNS],
            budget=budget,
            checkpoint=path,
        )
        resumed = search_many(
            model,
            tokenizer,
            [SearchQuery(p) for p in PATTERNS],
            budget=budget,
            checkpoint=path,
            resume=True,
        )
        assert _result_sets(resumed) == _result_sets(clean)
        for c, r in zip(clean, resumed):
            # Restored from snapshot: deterministic traversal stats match
            # the original run exactly, and zero new LM work was issued.
            assert r.stats.lm_calls == c.stats.lm_calls
            assert r.stats.matches_yielded == c.stats.matches_yielded
            assert r.latency is not None

    def test_fully_resumed_run_issues_no_model_rounds(self, tokenizer, model, tmp_path):
        from repro.lm.base import CountingModel

        budget = QueryBudget(max_results=4)
        path = str(tmp_path / "run.ckpt")
        queries = [SearchQuery(p) for p in PATTERNS]
        search_many(model, tokenizer, queries, budget=budget, checkpoint=path)
        counter = CountingModel(model)
        with QueryScheduler(
            counter, tokenizer, checkpoint_path=path, resume=True
        ) as scheduler:
            for q in queries:
                scheduler.submit(q, budget=budget)
            scheduler.run()
            assert scheduler.stats.queries_resumed == len(PATTERNS)
            assert counter.batch_rounds == 0 and counter.single_calls == 0

    def test_unrecognized_queries_run_fresh_alongside_resumed(
        self, model, tokenizer, tmp_path
    ):
        budget = QueryBudget(max_results=4)
        path = str(tmp_path / "run.ckpt")
        search_many(
            model,
            tokenizer,
            [SearchQuery(WIDE)],
            budget=budget,
            checkpoint=path,
        )
        extended = search_many(
            model,
            tokenizer,
            [SearchQuery(WIDE), SearchQuery("A (man|woman)")],
            budget=budget,
            checkpoint=path,
            resume=True,
        )
        assert all(h.done for h in extended)
        assert len(extended[1].results) > 0


class TestCLI:
    def test_resume_without_checkpoint_errors(self, capsys):
        from repro.cli import main

        rc = main(["query", WIDE, "--resume", "--scale", "test"])
        assert rc == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_checkpoint_flags_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "cli.ckpt")
        args = [
            "query",
            WIDE,
            "--scale",
            "test",
            "--max-matches",
            "4",
            "--checkpoint",
            path,
            "--checkpoint-every",
            "8",
        ]
        assert main(args) == 0
        first = capsys.readouterr()
        assert os.path.exists(path)
        assert "# checkpoint:" in first.err
        assert main(args + ["--resume"]) == 0
        second = capsys.readouterr()
        assert "resumed=1" in second.err
        assert first.out == second.out

    def test_inject_fault_flag_builds_plan(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "query",
                WIDE,
                "--scale",
                "test",
                "--max-matches",
                "3",
                "--workers",
                "2",
                "--inject-fault",
                "error:0:0",
                "--max-retries",
                "1",
            ]
        )
        assert rc == 0
        # Rounds are tiny at concurrency 1, so the pool may never shard —
        # the flag contract here is parse + clean completion either way.
        assert "matches" in capsys.readouterr().err
