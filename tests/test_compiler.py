"""Tests for the Graph Compiler (repro.core.compiler) — §3.2 of the paper."""

from __future__ import annotations

import pytest

from repro.core.compiler import GraphCompiler, prefixes_of
from repro.core.query import (
    QuerySearchStrategy,
    QueryString,
    QueryTokenizationStrategy,
    SearchQuery,
    SimpleSearchQuery,
)
from repro.regex import compile_dfa
from repro.tokenizers.bpe import train_bpe
from repro.tokenizers.vocab import Vocabulary
from repro.tokenizers.bpe import BPETokenizer


def _toy_tokenizer():
    """Hand-built vocabulary mirroring the paper's Figure 3: T, h, e, Th,
    he, The (plus the rest of the alphabet as base tokens)."""
    from repro.automata.alphabet import ALPHABET_SET

    base = sorted(ALPHABET_SET)
    vocab = Vocabulary.build(base + ["Th", "he", "The"])
    merges = [("T", "h"), ("h", "e"), ("Th", "e")]
    return BPETokenizer(vocab=vocab, merges=merges)


class TestAllEncodings:
    def test_figure3a_four_paths(self):
        """The paper's Figure 3a: `The` has exactly 4 ambiguous encodings
        when the vocabulary holds T, h, e, Th, he, The."""
        tok = _toy_tokenizer()
        for needed in ("Th", "he", "The"):
            assert needed in tok.vocab, f"vocab missing {needed}"
        compiler = GraphCompiler(tok)
        query = SearchQuery("The")
        compiled = compiler.compile(query)
        ta = compiled.token_automaton
        # Count distinct accepting token paths by DFS.
        def paths(state, depth=0):
            total = 1 if state in ta.accepts else 0
            if depth < 4:
                for dst in ta.successors(state).values():
                    total += paths(dst, depth + 1)
            return total
        assert paths(ta.start) == 4  # T-h-e, Th-e, T-he, The

    def test_every_path_decodes_into_language(self, tokenizer):
        compiler = GraphCompiler(tokenizer)
        compiled = compiler.compile(SearchQuery("The ((cat)|(dog))"))
        ta = compiled.token_automaton
        # Enumerate all accepting token paths and decode them.
        stack = [(ta.start, ())]
        decoded = set()
        while stack:
            state, path = stack.pop()
            if state in ta.accepts:
                decoded.add(tokenizer.decode(path))
            if len(path) < 12:
                for tid, dst in ta.successors(state).items():
                    stack.append((dst, path + (tid,)))
        assert decoded == {"The cat", "The dog"}

    def test_canonical_path_always_present(self, tokenizer):
        compiler = GraphCompiler(tokenizer)
        compiled = compiler.compile(SearchQuery("The cat sat on the mat\\."))
        toks = tokenizer.encode("The cat sat on the mat.")
        assert compiled.token_automaton.accepts_tokens(toks)

    def test_infinite_language_compiles(self, tokenizer):
        compiler = GraphCompiler(tokenizer)
        compiled = compiler.compile(SearchQuery("[0-9]+"))
        ta = compiled.token_automaton
        assert ta.accepts_tokens(tokenizer.encode("123"))
        assert ta.accepts_tokens(tokenizer.encode("5"))

    def test_rejects_strings_outside_language(self, tokenizer):
        compiler = GraphCompiler(tokenizer)
        compiled = compiler.compile(SearchQuery("The cat"))
        assert not compiled.token_automaton.accepts_tokens(tokenizer.encode("The dog"))

    def test_empty_language_compiles_to_empty_automaton(self, tokenizer):
        # A statically-empty language no longer raises: it compiles to a
        # degenerate automaton (no accepting states) flagged RLM001, so the
        # executor/scheduler can short-circuit with a clean empty result.
        compiler = GraphCompiler(tokenizer)
        from repro.core.preprocessors import FilterPreprocessor

        empty_query = SimpleSearchQuery(
            query_string=QueryString("a"),
            preprocessors=(FilterPreprocessor(["a"]),),
        )
        compiled = compiler.compile(empty_query)
        assert compiled.is_empty
        assert compiled.token_automaton.accepts == frozenset()
        assert compiled.report is not None
        assert "RLM001" in compiled.report.codes
        assert compiled.report.has_errors


class TestCanonical:
    def test_enumerated_canonical_single_paths(self, tokenizer):
        compiler = GraphCompiler(tokenizer)
        query = SearchQuery(
            "The ((cat)|(dog))",
            tokenization=QueryTokenizationStrategy.CANONICAL,
        )
        compiled = compiler.compile(query)
        ta = compiled.token_automaton
        assert not ta.dynamic_canonical
        # Exactly two accepting paths: the canonical encodings.
        assert ta.accepts_tokens(tokenizer.encode("The cat"))
        assert ta.accepts_tokens(tokenizer.encode("The dog"))
        # The char-split path must not exist.
        chars = [tokenizer.vocab.id_of(c) for c in "The cat"]
        assert not ta.accepts_tokens(chars)

    def test_canonical_edge_count_is_minimal(self, tokenizer):
        compiler = GraphCompiler(tokenizer)
        all_enc = compiler.compile(SearchQuery("The ((cat)|(dog))")).token_automaton
        canonical = compiler.compile(
            SearchQuery("The ((cat)|(dog))", tokenization=QueryTokenizationStrategy.CANONICAL)
        ).token_automaton
        assert canonical.num_edges < all_enc.num_edges

    def test_large_language_falls_back_to_dynamic(self, tokenizer):
        compiler = GraphCompiler(tokenizer, enumeration_limit=10)
        compiled = compiler.compile(
            SearchQuery("[0-9]{4}", tokenization=QueryTokenizationStrategy.CANONICAL)
        )
        assert compiled.token_automaton.dynamic_canonical

    def test_infinite_language_falls_back_to_dynamic(self, tokenizer):
        compiler = GraphCompiler(tokenizer)
        compiled = compiler.compile(
            SearchQuery("[0-9]+", tokenization=QueryTokenizationStrategy.CANONICAL)
        )
        assert compiled.token_automaton.dynamic_canonical


class TestPrefixRegion:
    def test_prefix_edges_marked(self, tokenizer):
        compiler = GraphCompiler(tokenizer)
        compiled = compiler.compile(
            SearchQuery("The cat sat", prefix="The cat")
        )
        ta = compiled.token_automaton
        state = ta.start
        flags = []
        for tok in tokenizer.encode("The cat sat"):
            dst = ta.successors(state)[tok]
            flags.append(ta.is_prefix_edge(dst))
            state = dst
        # Tokens inside "The cat" are prefix edges; " sat" is not.
        assert flags[0] is True
        assert flags[-1] is False

    def test_boundary_spanning_token_is_scored(self, tokenizer):
        """A token crossing the prefix boundary must not be exempt."""
        compiler = GraphCompiler(tokenizer)
        compiled = compiler.compile(SearchQuery("The cat", prefix="The c"))
        ta = compiled.token_automaton
        # " cat" spans from inside the prefix ("The c") past its end.
        state = ta.start
        for tok in tokenizer.encode("The"):
            state = ta.successors(state)[tok]
        cat = tokenizer.encode(" cat")[0]
        dst = ta.successors(state).get(cat)
        assert dst is not None
        assert not ta.is_prefix_edge(dst)

    def test_no_prefix_means_nothing_live(self, tokenizer):
        compiled = GraphCompiler(tokenizer).compile(SearchQuery("The cat"))
        assert not compiled.token_automaton.prefix_live

    def test_prefix_closure_language(self, tokenizer):
        compiled = GraphCompiler(tokenizer).compile(
            SearchQuery("The ((cat)|(dog))", prefix="The ((cat)|(dog))")
        )
        closure = compiled.prefix_closure
        for s in ["", "T", "The ", "The c", "The cat", "The d"]:
            assert closure.accepts_string(s), s
        assert not closure.accepts_string("The x")


class TestPrefixesOf:
    def test_all_prefixes_accepted(self):
        dfa = compile_dfa("abc|abd")
        closure = prefixes_of(dfa)
        for s in ["", "a", "ab", "abc", "abd"]:
            assert closure.accepts_string(s)
        assert not closure.accepts_string("abx")

    def test_empty_language_closure(self):
        from repro.automata.dfa import DFA

        closure = prefixes_of(DFA.from_strings([]))
        assert closure.accepts_string("")
