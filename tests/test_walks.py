"""Tests for walk counting and uniform sampling (repro.automata.walks)."""

from __future__ import annotations

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.walks import WalkCounter, count_accepting_walks, sample_uniform_string
from repro.regex import compile_dfa


class TestCounts:
    def test_matches_enumeration_finite(self):
        dfa = compile_dfa("(a|b)(c|d)?e{1,2}")
        assert count_accepting_walks(dfa) == len(list(dfa.enumerate_strings()))

    def test_bounded_count_of_infinite_language(self):
        dfa = compile_dfa("a*")
        # strings of length <= 5: "", a, aa, ..., aaaaa
        assert count_accepting_walks(dfa, max_length=5) == 6

    def test_infinite_without_bound_raises(self):
        with pytest.raises(ValueError):
            count_accepting_walks(compile_dfa("a+"))

    def test_digit_block(self):
        assert count_accepting_walks(compile_dfa("[0-9]{3}")) == 1000

    def test_paper_date_language(self):
        # <Month> <Day>, <Year> from Figure 1: 12 * (10 + 100) * 10000.
        months = "|".join(
            ["January", "February", "March", "April", "May", "June", "July",
             "August", "September", "October", "November", "December"]
        )
        dfa = compile_dfa(f"({months}) [0-9]{{1,2}}, [0-9]{{4}}")
        assert count_accepting_walks(dfa) == 12 * 110 * 10000

    def test_counts_are_exact_bigints(self):
        # 26^20 overflows float precision; counts must stay exact.
        dfa = compile_dfa("[a-z]{20}")
        assert count_accepting_walks(dfa) == 26**20

    def test_empty_language(self):
        dfa = compile_dfa("a").intersect(compile_dfa("b"))
        assert count_accepting_walks(dfa, max_length=4) == 0


class TestEdgeWeights:
    def test_weights_sum_to_continuations(self):
        dfa = compile_dfa("a(b|c)|ad")
        wc = WalkCounter(dfa, max_length=4)
        stop, weights = wc.edge_weights(dfa.start, 4)
        assert stop == 0
        assert sum(weights.values()) == 3  # ab, ac, ad

    def test_stop_weight_at_accepting_state(self):
        dfa = compile_dfa("a|ab")
        wc = WalkCounter(dfa, max_length=4)
        state_after_a = dfa.transitions[dfa.start]["a"]
        stop, weights = wc.edge_weights(state_after_a, 3)
        assert stop == 1
        assert sum(weights.values()) == 1  # just "ab"

    def test_level_exceeding_max_raises(self):
        wc = WalkCounter(compile_dfa("a"), max_length=2)
        with pytest.raises(ValueError):
            wc.counts_at(3)


class TestUniformSampling:
    def test_sample_is_member(self, rng):
        dfa = compile_dfa("(x|y){1,3}")
        wc = WalkCounter(dfa, max_length=5)
        for _ in range(50):
            assert dfa.accepts_string(wc.sample(rng))

    def test_uniformity_chi_square_ish(self, rng):
        # The paper's motivating example: language {a, b, bb, bbb}.
        # Uniform-over-strings gives each 25%; uniform-over-edges gives
        # 'a' 50%.
        dfa = compile_dfa("a|b{1,3}")
        wc = WalkCounter(dfa, max_length=4)
        n = 4000
        counts = Counter(wc.sample(rng) for _ in range(n))
        for s in ("a", "b", "bb", "bbb"):
            assert abs(counts[s] / n - 0.25) < 0.05, counts

    def test_edge_uniform_is_biased_toward_short(self, rng):
        dfa = compile_dfa("a|b{1,3}")
        wc = WalkCounter(dfa, max_length=4)
        n = 2000
        counts = Counter(wc.sample_uniform_edges(rng) for _ in range(n))
        # Uniform edges: p(a) = 1/2 at the first branch.
        assert counts["a"] / n > 0.4

    def test_empty_language_returns_none(self, rng):
        empty = compile_dfa("a").intersect(compile_dfa("b"))
        assert WalkCounter(empty, max_length=3).sample(rng) is None

    def test_sample_respects_max_length(self, rng):
        dfa = compile_dfa("a+")
        wc = WalkCounter(dfa, max_length=4)
        for _ in range(50):
            assert len(wc.sample(rng)) <= 4

    def test_convenience_wrapper(self, rng):
        s = sample_uniform_string(compile_dfa("ab|cd"), rng)
        assert s in ("ab", "cd")


@settings(max_examples=60, deadline=None)
@given(
    strings=st.lists(
        st.text(alphabet="abz", min_size=0, max_size=5), min_size=1, max_size=8, unique=True
    )
)
def test_count_equals_set_size(strings):
    """For explicit finite languages, the walk count equals the set size."""
    from repro.automata.dfa import DFA

    dfa = DFA.from_strings(strings)
    assert count_accepting_walks(dfa, max_length=6) == len(strings)


@settings(max_examples=30, deadline=None)
@given(
    strings=st.lists(
        st.text(alphabet="ab", min_size=1, max_size=4), min_size=2, max_size=6, unique=True
    ),
    seed=st.integers(0, 2**16),
)
def test_every_member_sampleable(strings, seed):
    """Uniform sampling can produce every member of a small language."""
    from repro.automata.dfa import DFA

    dfa = DFA.from_strings(strings)
    wc = WalkCounter(dfa, max_length=5)
    rng = random.Random(seed)
    seen = {wc.sample(rng) for _ in range(30 * len(strings))}
    assert seen == set(strings)
