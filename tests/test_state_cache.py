"""Unit tests for the prefix-state (KV) cache.

The cache is the substrate of incremental decoding: a trie over token
tuples with byte-budgeted LRU eviction.  These tests pin the contract the
transformer's incremental path relies on — proper-prefix lookup, LRU
recency on hits, byte accounting through replacement and eviction, and
counter semantics.
"""

from __future__ import annotations

import pytest

from repro.lm.state_cache import DEFAULT_KV_CACHE_BYTES, PrefixStateCache


def put(cache, key, nbytes=10, state=None):
    cache.put(key, state if state is not None else f"state{key}", nbytes)


class TestLookup:
    def test_exact_get_hit_and_miss(self):
        cache = PrefixStateCache(1000)
        put(cache, (1, 2, 3))
        assert cache.get((1, 2, 3)) == "state(1, 2, 3)"
        assert cache.get((1, 2)) is None
        assert (cache.hits, cache.misses) == (1, 1)

    def test_longest_prefix_finds_deepest_ancestor(self):
        cache = PrefixStateCache(1000)
        put(cache, (1,))
        put(cache, (1, 2, 3))
        m, state = cache.longest_prefix((1, 2, 3, 4, 5))
        assert (m, state) == (3, "state(1, 2, 3)")
        # The shallower ancestor is found once the deeper is out of range.
        m, state = cache.longest_prefix((1, 2, 9))
        assert (m, state) == (1, "state(1,)")

    def test_max_len_excludes_exact_key(self):
        """Incremental scoring must process at least the final token, so an
        exact-key entry is not a usable ancestor."""
        cache = PrefixStateCache(1000)
        put(cache, (1, 2, 3))
        m, state = cache.longest_prefix((1, 2, 3), max_len=2)
        assert (m, state) == (0, None)
        put(cache, (1, 2))
        m, state = cache.longest_prefix((1, 2, 3), max_len=2)
        assert (m, state) == (2, "state(1, 2)")

    def test_partial_prefix_counts_as_hit(self):
        cache = PrefixStateCache(1000)
        put(cache, (7,))
        m, _ = cache.longest_prefix((7, 8, 9, 10))
        assert m == 1
        assert cache.hits == 1 and cache.misses == 0

    def test_no_prefix_is_a_miss(self):
        cache = PrefixStateCache(1000)
        put(cache, (1, 2))
        m, state = cache.longest_prefix((3, 4))
        assert (m, state) == (0, None)
        assert cache.misses == 1


class TestEviction:
    def test_byte_budget_evicts_lru_first(self):
        cache = PrefixStateCache(30)
        put(cache, (1,), nbytes=10)
        put(cache, (2,), nbytes=10)
        put(cache, (3,), nbytes=10)
        assert cache.bytes == 30 and len(cache) == 3
        put(cache, (4,), nbytes=10)  # evicts (1,)
        assert cache.bytes == 30 and len(cache) == 3
        assert cache.evictions == 1
        assert cache.get((1,)) is None
        assert cache.get((4,)) is not None

    def test_lookup_refreshes_recency(self):
        cache = PrefixStateCache(30)
        put(cache, (1,), nbytes=10)
        put(cache, (2,), nbytes=10)
        put(cache, (3,), nbytes=10)
        cache.longest_prefix((1, 9))  # touch (1,) — now (2,) is LRU
        put(cache, (4,), nbytes=10)
        assert cache.get((1,)) is not None
        assert cache.get((2,)) is None

    def test_replace_in_place_accounts_bytes_once(self):
        cache = PrefixStateCache(100)
        put(cache, (1, 2), nbytes=40)
        put(cache, (1, 2), nbytes=60, state="fresh")
        assert cache.bytes == 60 and len(cache) == 1
        assert cache.get((1, 2)) == "fresh"
        assert cache.evictions == 0

    def test_oversized_entry_is_dropped_immediately(self):
        cache = PrefixStateCache(50)
        put(cache, (1,), nbytes=10)
        put(cache, (2,), nbytes=999)  # cannot fit: everything drains
        assert cache.bytes == 0 and len(cache) == 0
        assert cache.get((2,)) is None

    def test_eviction_prunes_dead_trie_chains(self):
        cache = PrefixStateCache(10)
        put(cache, (1, 2, 3, 4, 5), nbytes=10)
        put(cache, (9,), nbytes=10)  # evicts the deep chain
        assert 1 not in cache._root.children  # chain fully pruned
        assert 9 in cache._root.children

    def test_eviction_keeps_ancestors_with_payloads(self):
        cache = PrefixStateCache(20)
        put(cache, (1,), nbytes=10)
        put(cache, (1, 2, 3), nbytes=10)
        cache.longest_prefix((1, 2, 3, 4))  # deep node most recent
        put(cache, (5,), nbytes=10)  # evicts (1,) only
        m, state = cache.longest_prefix((1, 2, 3, 4))
        assert (m, state) == (3, "state(1, 2, 3)")


class TestCountersAndStats:
    def test_clear_drops_contents_keeps_counters(self):
        cache = PrefixStateCache(1000)
        put(cache, (1,))
        cache.get((1,))
        cache.get((2,))
        cache.clear()
        assert len(cache) == 0 and cache.bytes == 0
        assert cache.hits == 1 and cache.misses == 1
        assert cache.get((1,)) is None  # contents really gone

    def test_hit_rate_and_stats_dict(self):
        cache = PrefixStateCache(1000)
        assert cache.hit_rate == 0.0
        put(cache, (1,), nbytes=10)
        cache.get((1,))
        cache.get((2,))
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] == 10
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError, match="max_bytes"):
            PrefixStateCache(0)

    def test_default_budget_is_64_mib(self):
        assert DEFAULT_KV_CACHE_BYTES == 64 << 20
        assert PrefixStateCache().max_bytes == DEFAULT_KV_CACHE_BYTES
