"""Tests for the Figure 1 knowledge experiment (repro.experiments.knowledge)."""

from __future__ import annotations

import pytest

from repro.experiments.knowledge import (
    FACTS,
    FIGURE1_CHOICES,
    date_pattern,
    figure1_report,
    free_response,
    knowledge_world,
    multiple_choice,
    structured_query,
)


@pytest.fixture(scope="module")
def world():
    return knowledge_world(0)


class TestMultipleChoice:
    def test_xl_picks_correct_date(self, world):
        ranking = multiple_choice(world)
        assert ranking[0][0] == "February 22, 1732"

    def test_scores_sorted(self, world):
        ranking = multiple_choice(world)
        scores = [lp for _, lp in ranking]
        assert scores == sorted(scores, reverse=True)

    def test_candidate_list_dependence(self, world):
        """The paper's fragility: drop the correct answer and the argmax
        silently becomes a wrong-but-confident candidate."""
        bad_choices = tuple(c for c in FIGURE1_CHOICES if c != "February 22, 1732")
        ranking = multiple_choice(world, choices=bad_choices)
        assert ranking[0][0] != "February 22, 1732"  # trivially
        assert len(ranking) == 3

    def test_other_subjects(self, world):
        ranking = multiple_choice(
            world, subject="John Adams",
            choices=("October 30, 1735", "February 22, 1732", "a farm"),
        )
        assert ranking[0][0] == "October 30, 1735"


class TestFreeResponse:
    def test_xl_mostly_correct(self, world):
        buckets = free_response(world, num_samples=30)
        assert buckets["correct"] > buckets["unexpected"]

    def test_small_wanders(self, world):
        buckets = free_response(world, num_samples=30, model_size="small")
        assert buckets["correct"] < 30  # cannot reliably produce the date

    def test_buckets_partition_samples(self, world):
        buckets = free_response(world, num_samples=25)
        assert sum(buckets.values()) == 25


class TestStructuredQuery:
    def test_search_space_size(self):
        from repro.regex import compile_dfa

        assert compile_dfa(date_pattern()).count_strings() == 13_200_000

    def test_xl_rank_one(self, world):
        top = structured_query(world, top_n=5)
        assert top[0][0] == "February 22, 1732"

    def test_small_correct_in_top10(self, world):
        """The paper: the correct prediction is in the top 10 even when
        the top-1 is wrong."""
        top = structured_query(world, top_n=10, model_size="small")
        assert "February 22, 1732" in [d for d, _ in top]

    def test_results_only_dates(self, world):
        import re as pyre

        compiled = pyre.compile(date_pattern())
        for date, _ in structured_query(world, top_n=8):
            assert compiled.fullmatch(date), date


class TestReport:
    def test_report_bundles_panels(self):
        report = figure1_report()
        assert report.correct == "February 22, 1732"
        assert report.structured_rank == 1
        assert sum(report.free_response.values()) > 0

    def test_every_fact_answerable_by_xl(self, world):
        for subject, date in FACTS:
            top = structured_query(world, subject=subject, top_n=3)
            assert top[0][0] == date, subject
