"""Tests for analysis utilities: χ², metrics, edit distance."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import ExtractionLog, duplicate_rate, throughput, work_efficiency
from repro.analysis.stats import chi_square_bias_test, conditional_distribution
from repro.analysis.text import closest, edit_distance


class TestEditDistance:
    @pytest.mark.parametrize(
        "a,b,d",
        [
            ("", "", 0),
            ("a", "", 1),
            ("", "abc", 3),
            ("cat", "cat", 0),
            ("cat", "cut", 1),
            ("cat", "cats", 1),
            ("cat", "at", 1),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
        ],
    )
    def test_known_values(self, a, b, d):
        assert edit_distance(a, b) == d

    @settings(max_examples=100, deadline=None)
    @given(a=st.text(alphabet="abc", max_size=6), b=st.text(alphabet="abc", max_size=6))
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @settings(max_examples=100, deadline=None)
    @given(
        a=st.text(alphabet="ab", max_size=5),
        b=st.text(alphabet="ab", max_size=5),
        c=st.text(alphabet="ab", max_size=5),
    )
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @settings(max_examples=60, deadline=None)
    @given(a=st.text(alphabet="abc", max_size=6))
    def test_identity(self, a):
        assert edit_distance(a, a) == 0

    def test_closest(self):
        assert closest("medicin", ["art", "medicine", "math"]) == "medicine"
        with pytest.raises(ValueError):
            closest("x", [])


class TestChiSquare:
    def test_strong_dependence_is_significant(self):
        samples = {
            "man": ["eng"] * 90 + ["art"] * 10,
            "woman": ["eng"] * 10 + ["art"] * 90,
        }
        result = chi_square_bias_test(samples)
        assert result.p_value < 1e-10
        assert result.log10_p < -10

    def test_independence_is_not_significant(self):
        samples = {
            "man": ["eng"] * 50 + ["art"] * 50,
            "woman": ["eng"] * 50 + ["art"] * 50,
        }
        result = chi_square_bias_test(samples)
        assert result.p_value > 0.9

    def test_zero_columns_dropped(self):
        samples = {"man": ["a", "b"], "woman": ["a", "b", "b"]}
        result = chi_square_bias_test(samples, categories=["a", "b", "never"])
        assert len(result.table[0]) == 2

    def test_single_category_rejected(self):
        with pytest.raises(ValueError):
            chi_square_bias_test({"man": ["a"], "woman": ["a"]})

    def test_log10_p_survives_underflow(self):
        """p-values like the paper's 1e-229 underflow float ranges;
        log10_p must still be finite."""
        samples = {
            "man": ["eng"] * 100000 + ["art"] * 100,
            "woman": ["eng"] * 100 + ["art"] * 100000,
        }
        result = chi_square_bias_test(samples)
        assert result.p_value == 0.0 or result.p_value < 1e-300
        assert result.log10_p < -1000
        assert result.log10_p != float("-inf")

    def test_conditional_distribution(self):
        dist = conditional_distribution(["a", "a", "b"], ["a", "b", "c"])
        assert dist == {"a": 2 / 3, "b": 1 / 3, "c": 0.0}


class TestExtractionLog:
    def _log(self):
        log = ExtractionLog()
        log.record(1.0, "u1", True, work=10)
        log.record(2.0, "u1", True, work=20)  # duplicate
        log.record(3.0, "u2", False, work=30)
        log.record(4.0, "u3", True, work=40)
        return log

    def test_valid_unique(self):
        assert self._log().valid_unique() == ["u1", "u3"]

    def test_success_rate(self):
        assert self._log().success_rate() == pytest.approx(0.5)

    def test_throughput(self):
        assert throughput(self._log()) == pytest.approx(2 / 4.0)

    def test_work_efficiency(self):
        assert work_efficiency(self._log()) == pytest.approx(1000 * 2 / 40)

    def test_series_is_monotone(self):
        series = self._log().valid_unique_over_time()
        counts = [c for _, c in series]
        assert counts == sorted(counts)

    def test_empty_log(self):
        log = ExtractionLog()
        assert log.success_rate() == 0.0
        assert throughput(log) == 0.0
        assert work_efficiency(log) == 0.0

    def test_duplicate_rate(self):
        assert duplicate_rate(["a", "a", "b"]) == pytest.approx(1 / 3)
        assert duplicate_rate([]) == 0.0
        assert duplicate_rate(["x"]) == 0.0
