"""Tests for the shortest-path (Dijkstra) traversal — §3.3."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.api import prepare
from repro.core.query import (
    QuerySearchStrategy,
    QueryTokenizationStrategy,
    SearchQuery,
)
from repro.lm.base import LanguageModel


class UniformModel(LanguageModel):
    """Uniform next-token distribution: path cost depends only on length."""

    def __init__(self, vocab_size, eos_id):
        self.vocab_size = vocab_size
        self.eos_id = eos_id
        self.max_sequence_length = 64

    def logprobs(self, context):
        return np.full(self.vocab_size, -math.log(self.vocab_size))


class TestOrdering:
    def test_matches_in_decreasing_probability(self, model, tokenizer):
        query = SearchQuery("The ((cat)|(dog)|(woman)|(man))")
        results = list(prepare(model, tokenizer, query))
        logprobs = [r.total_logprob for r in results]
        assert logprobs == sorted(logprobs, reverse=True)

    def test_memorised_string_ranks_first(self, model, tokenizer):
        # "The cat sat on the mat." is in the corpus; other endings are not.
        query = SearchQuery("The cat sat on the ((mat)|(rug)|(box))\\.")
        first = next(iter(prepare(model, tokenizer, query)))
        assert first.text == "The cat sat on the mat."

    def test_exhausts_finite_language(self, model, tokenizer):
        query = SearchQuery("The ((cat)|(dog))")
        texts = {r.text for r in prepare(model, tokenizer, query)}
        assert texts == {"The cat", "The dog"}

    def test_logprob_matches_model_score(self, model, tokenizer):
        query = SearchQuery("The cat")
        result = next(iter(prepare(model, tokenizer, query)))
        expected = model.sequence_logprob(result.tokens)
        assert result.total_logprob == pytest.approx(expected, abs=1e-9)

    def test_uniform_model_yields_shortest_token_paths_first(self, tokenizer):
        model = UniformModel(len(tokenizer), tokenizer.eos_id)
        query = SearchQuery("a{1,4}")
        results = list(prepare(model, tokenizer, query))
        lengths = [len(r.tokens) for r in results]
        assert lengths == sorted(lengths)


class TestTopKPruning:
    def test_topk_prunes_unlikely_strings(self, model, tokenizer):
        # With greedy decoding only the single most likely branch survives.
        query = SearchQuery("The ((cat)|(dog))", top_k=None)
        all_texts = {r.text for r in prepare(model, tokenizer, query)}
        assert len(all_texts) == 2
        greedy = SearchQuery("The ((cat)|(dog))", top_k=1)
        greedy_texts = {r.text for r in prepare(model, tokenizer, greedy)}
        assert len(greedy_texts) <= 1

    def test_transitive_elimination_counted(self, model, tokenizer):
        query = SearchQuery("The ((cat)|(dog)|(man)|(woman))", top_k=1)
        session = prepare(model, tokenizer, query)
        list(session)
        assert session.stats.pruned_edges > 0

    def test_prefix_edges_bypass_topk(self, model, tokenizer):
        # 'George Washington...' is low-probability at the start of text,
        # but as a prefix it must not be pruned even under top_k=1.
        query = SearchQuery(
            "George Washington was born on February 22, 1732\\.",
            prefix="George Washington was born on",
            top_k=1,
        )
        results = list(prepare(model, tokenizer, query))
        assert len(results) == 1


class TestRequireEos:
    def test_eos_scored_and_required(self, model, tokenizer):
        # "The cat sat on the" continues in the corpus; with require_eos
        # the match must be a plausible full line.
        query = SearchQuery("The cat sat on the mat\\.", require_eos=True)
        result = next(iter(prepare(model, tokenizer, query)))
        without = SearchQuery("The cat sat on the mat\\.")
        base = next(iter(prepare(model, tokenizer, without)))
        # EOS step adds cost.
        assert result.total_logprob < base.total_logprob

    def test_eos_disambiguates_nested_matches(self, model, tokenizer):
        # Language {"The cat", "The cat sat"}: with require_eos both are
        # still yielded but ranked by P(string + EOS).
        query = SearchQuery("The cat( sat)?", require_eos=True)
        results = list(prepare(model, tokenizer, query))
        assert {r.text for r in results} == {"The cat", "The cat sat"}


class TestDedupe:
    def test_same_string_different_encodings_deduped(self, model, tokenizer):
        query = SearchQuery("The cat")
        session = prepare(model, tokenizer, query)
        texts = [r.text for r in session]
        assert len(texts) == len(set(texts)) == 1
        assert session.stats.duplicates_suppressed >= 0

    def test_dedupe_off_yields_encodings(self, model, tokenizer):
        query = SearchQuery("The cat")
        session = prepare(model, tokenizer, query, dedupe=False, max_expansions=3000)
        texts = [r.text for r in session]
        assert len(texts) > 1
        assert set(texts) == {"The cat"}


class TestDynamicCanonical:
    def test_dynamic_canonical_yields_only_canonical(self, model, tokenizer):
        query = SearchQuery(
            "[0-9]{2,3}",
            tokenization=QueryTokenizationStrategy.CANONICAL,
        )
        # Force dynamic mode via a tiny enumeration limit.
        from repro.core.compiler import GraphCompiler
        from repro.core.executor import Executor

        compiler = GraphCompiler(tokenizer, enumeration_limit=5)
        compiled = compiler.compile(query)
        assert compiled.token_automaton.dynamic_canonical
        executor = Executor(model, compiled, max_expansions=4000)
        results = list(executor.run())
        assert results
        assert all(r.canonical for r in results)


class TestBudgets:
    def test_max_expansions_terminates_search(self, model, tokenizer):
        query = SearchQuery("[a-z]+")  # infinite language
        session = prepare(model, tokenizer, query, max_expansions=50)
        results = list(session)
        assert session.stats.nodes_expanded <= 50

    def test_sequence_length_caps_matches(self, model, tokenizer):
        query = SearchQuery("a+", sequence_length=3)
        session = prepare(model, tokenizer, query, max_expansions=500)
        for r in session:
            assert len(r.tokens) <= 3


class TestPrefixSemantics:
    def test_prefix_cost_excluded_from_logprob(self, model, tokenizer):
        query = SearchQuery(
            "The cat sat on the mat\\.", prefix="The cat sat on the"
        )
        result = next(iter(prepare(model, tokenizer, query)))
        # total scores everything; logprob scores the suffix only.
        assert result.logprob > result.total_logprob
        assert result.prefix_text == "The cat sat on the"

    def test_suffix_text(self, model, tokenizer):
        query = SearchQuery("The cat sat", prefix="The cat")
        result = next(iter(prepare(model, tokenizer, query)))
        assert result.suffix_text == " sat"
