"""Unit tests for the static query analyzer (``repro.core.analyze``).

One test class per finding code, plus the short-circuit regressions the
analyzer enables: a statically-empty query must produce a clean empty
result — serially and under the scheduler — without a single LM call.
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import Sequence

import numpy as np
import pytest

from repro.core.analyze import QueryAnalyzer, analyze_query, syntax_error_report
from repro.core.api import prepare, search
from repro.core.compiler import GraphCompiler, TokenAutomaton
from repro.core.findings import CostEstimate, Finding, QueryReport, Severity
from repro.core.preprocessors import FilterPreprocessor, IntersectionPreprocessor
from repro.core.query import QueryString, QueryTokenizationStrategy, SearchQuery, SimpleSearchQuery
from repro.core.scheduler import QueryScheduler


class CountingModel:
    """Delegating model wrapper that counts every scoring call."""

    def __init__(self, inner):
        self._inner = inner
        self.single_calls = 0
        self.batch_calls = 0

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def logprobs(self, context: Sequence[int]) -> np.ndarray:
        self.single_calls += 1
        return self._inner.logprobs(context)

    def logprobs_batch(self, contexts):
        self.batch_calls += 1
        return self._inner.logprobs_batch(contexts)

    def logprobs_round(self, contexts):
        self.batch_calls += 1
        return self._inner.logprobs_round(contexts)

    @property
    def total_calls(self) -> int:
        return self.single_calls + self.batch_calls


def empty_query(**kwargs) -> SimpleSearchQuery:
    """A query whose language is statically empty (``a`` minus ``a``)."""
    return SimpleSearchQuery(
        query_string=QueryString("a"),
        preprocessors=(FilterPreprocessor(["a"]),),
        **kwargs,
    )


class TestSyntaxErrorReport:
    def test_rlm000(self):
        report = syntax_error_report("[unclosed", None, "missing ]")
        assert report.has_errors
        assert report.verdict == "error"
        assert report.codes == {"RLM000"}
        assert report.cost is None


class TestEmptyLanguage:
    def test_rlm001_via_filter(self, tokenizer):
        report = analyze_query(empty_query(), tokenizer)
        assert "RLM001" in report.codes
        assert report.has_errors

    def test_rlm001_via_intersection(self, tokenizer):
        query = SimpleSearchQuery(
            query_string=QueryString("aa"),
            preprocessors=(IntersectionPreprocessor("bb"),),
        )
        report = analyze_query(query, tokenizer)
        assert "RLM001" in report.codes

    def test_healthy_query_has_no_rlm001(self, tokenizer):
        report = analyze_query(SearchQuery("The cat"), tokenizer)
        assert "RLM001" not in report.codes
        assert not report.has_errors


class TestVocabCoverage:
    def test_rlm002_uncovered_symbol(self, tokenizer):
        # '#' is in the engine alphabet but absent from the training
        # corpus, so no BPE token covers it beyond the byte fallback; when
        # even the byte level lacks it the finding must fire.  Build the
        # condition synthetically: analyze with an analyzer whose covered
        # set excludes '#'.
        analyzer = QueryAnalyzer(tokenizer)
        if "#" in analyzer._covered_chars:
            analyzer._covered_chars = analyzer._covered_chars - {"#"}
        report = analyze_query(
            SearchQuery("a#b"), tokenizer, analyzer=analyzer
        )
        assert "RLM002" in report.codes
        rlm002 = report.finding("RLM002")
        assert "#" in rlm002.data["uncovered"]
        # every path goes through '#', so the gap is fatal
        assert rlm002.severity is Severity.ERROR

    def test_rlm002_nonfatal_when_detour_exists(self, tokenizer):
        analyzer = QueryAnalyzer(tokenizer)
        analyzer._covered_chars = analyzer._covered_chars - {"#"}
        report = analyze_query(SearchQuery("a(#|b)c"), tokenizer, analyzer=analyzer)
        rlm002 = report.finding("RLM002")
        assert rlm002 is not None
        assert rlm002.severity is Severity.WARNING
        assert not report.has_errors


class TestInfiniteLanguage:
    def test_rlm003_without_sequence_length(self, tokenizer):
        report = analyze_query(SearchQuery("(cat )+"), tokenizer)
        assert "RLM003" in report.codes
        assert report.cost.language_infinite

    def test_no_rlm003_with_sequence_length(self, tokenizer):
        report = analyze_query(SearchQuery("(cat )+", sequence_length=8), tokenizer)
        assert "RLM003" not in report.codes
        assert report.cost.language_infinite  # still infinite, just bounded

    def test_no_rlm003_for_finite_language(self, tokenizer):
        report = analyze_query(SearchQuery("cat|dog"), tokenizer)
        assert "RLM003" not in report.codes
        assert not report.cost.language_infinite


class TestStateBlowup:
    def test_rlm004_fires_at_low_threshold(self, tokenizer):
        analyzer = QueryAnalyzer(tokenizer, state_threshold=1)
        report = analyze_query(SearchQuery("cat|dog"), tokenizer, analyzer=analyzer)
        assert "RLM004" in report.codes
        assert report.finding("RLM004").severity is Severity.WARNING

    def test_rlm004_silent_normally(self, tokenizer):
        report = analyze_query(SearchQuery("cat|dog"), tokenizer)
        assert "RLM004" not in report.codes


class TestCanonicalDivergence:
    def test_rlm005_on_all_tokens_ambiguity(self, tokenizer):
        report = analyze_query(
            SearchQuery("The cat sat", tokenization=QueryTokenizationStrategy.ALL_TOKENS),
            tokenizer,
        )
        # many encodings per string on this tokenizer -> divergence finding
        assert "RLM005" in report.codes

    def test_rlm005_absent_on_canonical(self, tokenizer):
        report = analyze_query(
            SearchQuery("The cat", tokenization=QueryTokenizationStrategy.CANONICAL),
            tokenizer,
        )
        finding = report.finding("RLM005")
        # canonical compilation either has no divergence finding or only
        # the dynamic-fallback advisory; never an encoding-ambiguity error
        assert finding is None or finding.severity is not Severity.ERROR


class TestDeadStates:
    def test_rlm006_on_planted_dead_state(self, tokenizer):
        compiler = GraphCompiler(tokenizer)
        compiled = compiler.compile(SearchQuery("The cat"))
        automaton = compiled.token_automaton
        # graft an unproductive state reachable from the start
        dead = max(automaton.edges.keys() | {automaton.start}) + 1000
        edges = {q: dict(succ) for q, succ in automaton.edges.items()}
        edges.setdefault(automaton.start, {})[999_999] = dead
        patched = TokenAutomaton(
            start=automaton.start,
            accepts=automaton.accepts,
            edges=edges,
            prefix_live=automaton.prefix_live,
            dynamic_canonical=automaton.dynamic_canonical,
        )
        report = QueryAnalyzer(tokenizer).analyze_compiled(
            replace(compiled, token_automaton=patched)
        )
        assert "RLM006" in report.codes

    def test_no_rlm006_on_trim_compiled_query(self, tokenizer):
        report = analyze_query(SearchQuery("The cat"), tokenizer)
        assert "RLM006" not in report.codes


class TestCostEstimate:
    def test_finite_language_counts(self, tokenizer):
        report = analyze_query(SearchQuery("cat|dog"), tokenizer)
        cost = report.cost
        assert cost.char_language_size == 2
        assert not cost.language_infinite
        assert cost.language_size >= 2  # token paths >= strings
        assert cost.max_frontier_width >= 1
        assert cost.lm_calls_bound >= cost.language_size

    def test_horizon_tracks_sequence_length(self, tokenizer):
        report = analyze_query(SearchQuery("cat", sequence_length=7), tokenizer)
        assert report.cost.horizon == 7

    def test_cache_rebind_recomputes_horizon(self, tokenizer):
        compiler = GraphCompiler(tokenizer)
        first = compiler.compile(SearchQuery("(cat )+"))
        assert "RLM003" in first.report.codes
        # same pattern, now bounded: the cached compilation is reused but
        # the report must drop RLM003 and adopt the new horizon
        second = compiler.compile(SearchQuery("(cat )+", sequence_length=6))
        assert compiler.cache.hits >= 1
        assert "RLM003" not in second.report.codes
        assert second.report.cost.horizon == 6

    def test_report_round_trips_to_json(self, tokenizer):
        report = analyze_query(SearchQuery("cat|dog"), tokenizer)
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["verdict"] == report.verdict
        assert payload["cost"]["char_language_size"] == 2


class TestReportPlumbing:
    def test_compiled_query_carries_report(self, tokenizer):
        compiled = GraphCompiler(tokenizer).compile(SearchQuery("The cat"))
        assert isinstance(compiled.report, QueryReport)

    def test_analyzer_can_be_disabled(self, tokenizer):
        compiled = GraphCompiler(tokenizer, analyzer=False).compile(SearchQuery("The cat"))
        assert compiled.report is None

    def test_session_exposes_report(self, model, tokenizer):
        session = prepare(model, tokenizer, SearchQuery("The cat"))
        assert session.report is not None
        assert session.report.verdict in ("ok", "warning")

    def test_findings_sorted_most_severe_first(self, tokenizer):
        report = analyze_query(empty_query(), tokenizer)
        severities = [f.severity for f in report.findings]
        assert severities == sorted(severities, reverse=True)


class TestEmptyShortCircuitSerial:
    def test_no_matches_and_no_lm_traffic(self, tokenizer):
        from repro.lm.ngram import NGramModel
        from tests.conftest import TINY_CORPUS

        counting = CountingModel(
            NGramModel.train_on_text(TINY_CORPUS, tokenizer, order=3, alpha=0.5)
        )
        session = prepare(counting, tokenizer, empty_query())
        assert session.executor.language_empty
        matches = list(session)
        assert matches == []
        assert session.stats.lm_calls == 0
        assert counting.total_calls == 0
        assert session.report.has_errors
        assert "RLM001" in session.report.codes

    def test_search_helper_empty(self, model, tokenizer):
        assert list(search(model, tokenizer, empty_query())) == []


class TestEmptyShortCircuitScheduled:
    def _counting_scheduler(self, tokenizer, **kwargs):
        from repro.lm.ngram import NGramModel
        from tests.conftest import TINY_CORPUS

        counting = CountingModel(
            NGramModel.train_on_text(TINY_CORPUS, tokenizer, order=3, alpha=0.5)
        )
        return counting, QueryScheduler(counting, tokenizer, **kwargs)

    def test_admission_control_rejects(self, tokenizer):
        counting, scheduler = self._counting_scheduler(tokenizer)
        bad = scheduler.submit(empty_query())
        good = scheduler.submit(SearchQuery("The cat"))
        finished = scheduler.run()
        assert len(finished) == 2
        assert bad.truncated and bad.truncated_reason == "rejected"
        assert bad.results == []
        assert bad.stats.lm_calls == 0
        assert not good.truncated
        assert {m.text for m in good.results} == {"The cat"}
        stats = scheduler.stats
        assert stats.queries_rejected == 1
        assert stats.per_query_verdict[bad.name] == "error"
        assert stats.per_query_verdict[good.name] in ("ok", "warning")

    def test_rejection_in_stats_dict(self, tokenizer):
        _, scheduler = self._counting_scheduler(tokenizer)
        scheduler.submit(empty_query())
        scheduler.run()
        payload = scheduler.stats.as_dict()
        assert payload["queries_rejected"] == 1
        assert "per_query_verdict" in payload

    def test_without_admission_control_short_circuits(self, tokenizer):
        counting, scheduler = self._counting_scheduler(
            tokenizer, admission_control=False
        )
        handle = scheduler.submit(empty_query())
        scheduler.run()
        # not rejected: the executor's own short-circuit finishes it clean
        assert not handle.truncated
        assert handle.results == []
        assert handle.stats.lm_calls == 0
        assert counting.total_calls == 0
        assert scheduler.stats.queries_rejected == 0

    def test_cost_cap_rejects_expensive_query(self, tokenizer):
        _, scheduler = self._counting_scheduler(tokenizer, admission_max_cost=0)
        handle = scheduler.submit(SearchQuery("The cat"))
        scheduler.run()
        assert handle.truncated and handle.truncated_reason == "rejected_cost"
        assert scheduler.stats.queries_rejected == 1

    def test_cheapest_cost_fairness_runs(self, model, tokenizer):
        scheduler = QueryScheduler(model, tokenizer, fairness="cheapest_cost")
        a = scheduler.submit(SearchQuery("The cat"))
        b = scheduler.submit(SearchQuery("The dog"))
        scheduler.run()
        assert {m.text for m in a.results} == {"The cat"}
        assert {m.text for m in b.results} == {"The dog"}


class TestFindingPrimitives:
    def test_severity_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO
        assert Severity.ERROR.label == "error"

    def test_finding_render(self):
        f = Finding(code="RLM001", severity=Severity.ERROR, message="empty")
        assert f.render().startswith("RLM001 error")

    def test_cost_render_infinite(self):
        cost = CostEstimate(
            horizon=8,
            num_states=3,
            num_edges=4,
            char_states=2,
            language_infinite=True,
            language_size=12,
        )
        assert "∞" in cost.render()

    def test_report_verdict_ok_when_only_info(self):
        report = QueryReport(
            query_str="x",
            prefix_str=None,
            findings=(Finding(code="RLM005", severity=Severity.INFO, message="m"),),
        )
        assert report.verdict == "ok"
        assert not report.has_errors
