"""Tests for finite-state transducers (repro.automata.transducer)."""

from __future__ import annotations

import pytest

from repro.automata.alphabet import ALPHABET
from repro.automata.transducer import FST, identity_fst, replace_fst
from repro.regex import compile_dfa


class TestIdentity:
    def test_preserves_language(self):
        fst = identity_fst("abc")
        dfa = compile_dfa("(ab)|(ba)")
        image = fst.apply_dfa(dfa)
        assert sorted(image.enumerate_strings()) == ["ab", "ba"]

    def test_drops_strings_outside_fst_alphabet(self):
        fst = identity_fst("a")
        image = fst.apply_dfa(compile_dfa("a|b"))
        assert sorted(image.enumerate_strings()) == ["a"]


class TestReplace:
    def test_optional_rewrite_keeps_both(self):
        fst = replace_fst({"a": "A"}, ALPHABET)
        image = fst.apply_dfa(compile_dfa("cat"))
        assert sorted(image.enumerate_strings()) == ["cAt", "cat"]

    def test_multiple_positions(self):
        fst = replace_fst({"a": "x"}, "abc")
        image = fst.apply_dfa(compile_dfa("aa"))
        assert sorted(image.enumerate_strings()) == ["aa", "ax", "xa", "xx"]


class TestCustomFST:
    def test_deleting_transducer(self):
        # Maps 'b' to epsilon, identity elsewhere: image of "abc" is "ac".
        fst = FST(start=0, accepts={0})
        fst.num_states = 1
        for ch in "ac":
            fst.add_edge(0, ch, ch, 0)
        fst.add_edge(0, "b", None, 0)
        image = fst.apply_dfa(compile_dfa("abc"))
        assert sorted(image.enumerate_strings()) == ["ac"]

    def test_inserting_transducer(self):
        # Inserts an optional '!' anywhere (epsilon input, '!' output).
        fst = identity_fst("ab")
        fst.add_edge(0, None, "!", 0)
        image = fst.apply_dfa(compile_dfa("ab"))
        assert image.accepts_string("ab")
        assert image.accepts_string("a!b")
        assert image.accepts_string("!ab!")

    def test_two_state_transducer(self):
        # Uppercases only the first character.
        fst = FST(start=0, accepts={1})
        fst.num_states = 2
        fst.add_edge(0, "a", "A", 1)
        for ch in "ab":
            fst.add_edge(1, ch, ch, 1)
        image = fst.apply_dfa(compile_dfa("ab|aa"))
        assert sorted(image.enumerate_strings()) == ["Aa", "Ab"]

    def test_bad_labels_rejected(self):
        fst = FST(start=0, accepts={0})
        with pytest.raises(ValueError):
            fst.add_edge(0, "ab", "a", 0)
        with pytest.raises(ValueError):
            fst.add_edge(0, "a", "xy", 0)


class TestComposition:
    def test_compose_rewrites_chain(self):
        a_to_b = replace_fst({"a": "b"}, "ab")
        b_to_c = replace_fst({"b": "c"}, "abc")
        chained = a_to_b.compose(b_to_c)
        image = chained.apply_dfa(compile_dfa("a"))
        # a -> {a, b} -> {a, b, c}
        assert sorted(image.enumerate_strings()) == ["a", "b", "c"]

    def test_compose_identity_is_identity(self):
        ident = identity_fst("ab")
        composed = ident.compose(ident)
        image = composed.apply_dfa(compile_dfa("ab|ba"))
        assert sorted(image.enumerate_strings()) == ["ab", "ba"]
