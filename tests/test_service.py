"""Validation-as-a-service acceptance tests (PR 10).

The headline claims, from the issue:

* a warm server answers a repeat query with **zero recompiles** and
  strictly fewer LM calls than a cold one-shot run (pinned with
  :class:`~repro.lm.base.CountingModel`);
* protocol fuzz — malformed frames, oversized payloads, mid-stream
  disconnects — never crashes the server or strands the engine thread;
* SIGTERM during an in-flight round checkpoints, and a restarted server
  resumes bit-identical results (subprocess test, real signal).

Plus the mechanics underneath: bit-identical float round-trips over the
NDJSON wire, windowed backpressure with stall accounting, cancellation
mid-stream, per-client quotas, and graceful in-process drain/resume.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro import SearchQuery
from repro.core.api import search
from repro.core.compiler import CompilationCache, GraphCompiler
from repro.core.scheduler import QueryBudget, QueryScheduler
from repro.lm.base import CountingModel, LanguageModel
from repro.service import (
    SchedulerService,
    ServiceClient,
    ServiceError,
    ValidationServer,
    protocol,
)

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


class SlowModel(LanguageModel):
    """Delay every model dispatch: makes 'mid-flight' deterministic."""

    def __init__(self, inner: LanguageModel, delay: float) -> None:
        self.inner = inner
        self.delay = delay
        self.vocab_size = inner.vocab_size
        self.eos_id = inner.eos_id
        self.max_sequence_length = inner.max_sequence_length

    def logprobs(self, context):
        time.sleep(self.delay)
        return self.inner.logprobs(context)

    def logprobs_batch(self, contexts):
        time.sleep(self.delay)
        return self.inner.logprobs_batch(contexts)


@contextlib.asynccontextmanager
async def serving(model, tokenizer, *, max_frame_bytes=None, **service_kwargs):
    """An in-process server on a random port; always drained on exit."""
    service = SchedulerService(model, tokenizer, **service_kwargs)
    kwargs = {} if max_frame_bytes is None else {"max_frame_bytes": max_frame_bytes}
    server = ValidationServer(service, **kwargs)
    await server.start()
    try:
        yield server, service
    finally:
        await server.shutdown()
        assert service.join(timeout=10.0), "engine thread stranded after shutdown"


async def raw_connect(host, port):
    """A bare-socket client (for fuzzing below the typed client)."""
    reader, writer = await asyncio.open_connection(host, port)
    hello = json.loads(await asyncio.wait_for(reader.readline(), 10.0))
    assert hello["type"] == "hello"
    return reader, writer, hello


async def read_frames_until(reader, predicate, *, timeout=20.0):
    """Read frames off a raw connection until *predicate* says stop."""
    seen = []
    deadline = time.monotonic() + timeout
    while True:
        remaining = deadline - time.monotonic()
        assert remaining > 0, f"timed out waiting for frame; saw {seen}"
        line = await asyncio.wait_for(reader.readline(), remaining)
        assert line, f"connection closed early; saw {seen}"
        frame = json.loads(line)
        seen.append(frame)
        if predicate(frame):
            return seen


# ---------------------------------------------------------------------------
class TestStreaming:
    def test_matches_bit_identical_to_in_process(self, model, tokenizer):
        """Floats survive the JSON wire: streamed results == serial search."""
        query = SearchQuery("The ((cat)|(dog))")
        reference = list(search(model, tokenizer, query))
        assert reference

        async def scenario():
            async with serving(model, tokenizer) as (server, _service):
                async with await ServiceClient.connect(server.host, server.port) as client:
                    stream = await client.submit(query)
                    got = await stream.collect()
                    assert stream.status == "ok"
                    return got

        got = asyncio.run(scenario())
        assert got == reference  # full dataclass equality, logprobs included

    def test_concurrent_clients_each_get_their_own_stream(self, model, tokenizer):
        patterns = ["The cat", "The dog", "the [a-z]{1,3}"]
        references = {
            p: list(search(model, tokenizer, SearchQuery(p)))[:4] for p in patterns
        }

        async def one_client(host, port, pattern):
            async with await ServiceClient.connect(host, port) as client:
                stream = await client.submit(SearchQuery(pattern), max_results=4)
                return await stream.collect()

        async def scenario():
            async with serving(model, tokenizer) as (server, service):
                results = await asyncio.gather(
                    *(one_client(server.host, server.port, p) for p in patterns)
                )
                stats = service.stats_snapshot()
                assert stats["sessions_opened"] == 3
                assert stats["queries_admitted"] == 3
                return dict(zip(patterns, results))

        results = asyncio.run(scenario())
        for pattern in patterns:
            assert results[pattern] == references[pattern]

    def test_progress_frames_and_done_stats(self, model, tokenizer):
        async def scenario():
            async with serving(model, tokenizer, progress_every=1) as (server, _service):
                async with await ServiceClient.connect(server.host, server.port) as client:
                    stream = await client.submit(
                        SearchQuery("the( [a-z]{1,3}){1,4}"), max_results=6
                    )
                    await stream.collect()
                    assert stream.status == "truncated"
                    assert stream.reason == "max_results"
                    assert stream.progress is not None
                    assert stream.progress["rounds"] >= 1
                    assert stream.stats["lm_calls"] > 0
                    assert stream.latency_ms is not None

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
class TestWarmServer:
    def test_repeat_query_zero_recompiles_strictly_fewer_lm_calls(self, model, tokenizer):
        """The acceptance pin: warm repeat beats a cold one-shot on both
        compiles (zero) and LM traffic (strictly fewer model contexts)."""
        query = SearchQuery("the [a-z]{1,4}")
        counting = CountingModel(model)
        cold_compiler = GraphCompiler(tokenizer, cache=CompilationCache(max_entries=64))
        cold_reference = list(search(counting, tokenizer, query, compiler=cold_compiler))
        cold_contexts = counting.contexts_scored
        assert cold_contexts > 0

        async def scenario():
            counting.reset()
            async with serving(counting, tokenizer) as (server, service):
                async with await ServiceClient.connect(server.host, server.port) as client:
                    first = await (await client.submit(query)).collect()
                    contexts_after_first = counting.contexts_scored
                    compile_misses = service.compiler.cache.misses
                    second = await (await client.submit(query)).collect()
                    repeat_contexts = counting.contexts_scored - contexts_after_first
                    recompiles = service.compiler.cache.misses - compile_misses
                    return first, second, repeat_contexts, recompiles

        first, second, repeat_contexts, recompiles = asyncio.run(scenario())
        assert first == cold_reference
        assert second == cold_reference
        assert recompiles == 0
        assert repeat_contexts < cold_contexts

    def test_fresh_service_on_warm_disk_cache_recompiles_nothing(self, model, tokenizer, tmp_path):
        """Restart story: a new service over the same --compile-cache dir
        serves the same query from disk — zero fresh compilations."""
        cache_dir = str(tmp_path / "cc")
        query = SearchQuery("the [a-z]{1,4}")

        async def run_once():
            async with serving(model, tokenizer, compile_cache=cache_dir) as (server, service):
                async with await ServiceClient.connect(server.host, server.port) as client:
                    await (await client.submit(query)).collect()
                return service.compiler.disk_cache.stats()

        cold = asyncio.run(run_once())
        assert cold["misses"] >= 1 and cold["writes"] >= 1
        warm = asyncio.run(run_once())  # brand-new compiler, same dir
        assert warm["misses"] == 0
        assert warm["hits"] >= 1


# ---------------------------------------------------------------------------
class TestBackpressure:
    def test_windowed_delivery_stalls_and_resumes(self, model, tokenizer):
        async def scenario():
            async with serving(model, tokenizer) as (server, service):
                async with await ServiceClient.connect(server.host, server.port) as client:
                    stream = await client.submit(
                        SearchQuery("the [a-z]{1,4}"),
                        max_results=8,
                        window=3,
                        auto_grant=False,
                    )
                    got = []
                    async for match in stream:
                        got.append(match)
                        if len(got) == 3:
                            # Exactly the window was delivered; the rest is
                            # held server-side (in the handle, not copied).
                            for _ in range(50):
                                if service.stats.backpressure_stalls:
                                    break
                                await asyncio.sleep(0.05)
                            stats = await client.stats()
                            assert stats["matches_streamed"] == 3
                            assert stats["backpressure_stalls"] >= 1
                            await stream.grant(100)
                    assert len(got) == 8
                    assert stream.status == "truncated"  # max_results budget

        asyncio.run(scenario())


class TestCancel:
    def test_cancel_mid_stream(self, model, tokenizer):
        async def scenario():
            async with serving(model, tokenizer) as (server, service):
                async with await ServiceClient.connect(server.host, server.port) as client:
                    stream = await client.submit(
                        SearchQuery("[a-z ]{1,30}"),
                        max_results=100_000,
                        window=1,
                        auto_grant=False,
                    )
                    first = await asyncio.wait_for(stream.__anext__(), 30.0)
                    assert first.text
                    await stream.cancel()
                    with pytest.raises(StopAsyncIteration):
                        while True:
                            await asyncio.wait_for(stream.__anext__(), 30.0)
                    assert stream.status == "cancelled"
                    assert service.stats.queries_cancelled == 1

        asyncio.run(scenario())


class TestQuotas:
    def test_inflight_quota_rejects_second_query(self, model, tokenizer):
        slow = SlowModel(model, 0.02)

        async def scenario():
            async with serving(
                slow, tokenizer, max_inflight=1, progress_every=1
            ) as (server, _service):
                async with await ServiceClient.connect(server.host, server.port) as client:
                    running = await client.submit(
                        SearchQuery("the( [a-z]{1,3}){1,8}"), max_results=50
                    )
                    # Wait until the first query is demonstrably in flight.
                    for _ in range(200):
                        if running.progress is not None:
                            break
                        await asyncio.sleep(0.02)
                    assert running.progress is not None
                    rejected = await client.submit(SearchQuery("The cat"))
                    with pytest.raises(StopAsyncIteration):
                        await asyncio.wait_for(rejected.__anext__(), 30.0)
                    assert rejected.status == "rejected"
                    assert rejected.reason == "quota_inflight"
                    await running.cancel()
                    await running.collect()

        asyncio.run(scenario())

    def test_lm_rate_quota_rejects_after_burst(self, model, tokenizer):
        async def scenario():
            async with serving(
                model, tokenizer, lm_calls_per_minute=1
            ) as (server, _service):
                async with await ServiceClient.connect(server.host, server.port) as client:
                    first = await client.submit(SearchQuery("The cat"))
                    await first.collect()
                    assert first.status == "ok"
                    assert first.stats["lm_calls"] >= 1
                    second = await client.submit(SearchQuery("The dog"))
                    with pytest.raises(StopAsyncIteration):
                        await asyncio.wait_for(second.__anext__(), 30.0)
                    assert second.status == "rejected"
                    assert second.reason == "quota_lm_rate"

        asyncio.run(scenario())

    def test_static_admission_cost_rejection(self, model, tokenizer):
        async def scenario():
            async with serving(
                model, tokenizer, admission_max_cost=1
            ) as (server, _service):
                async with await ServiceClient.connect(server.host, server.port) as client:
                    stream = await client.submit(SearchQuery("the [a-z]{1,8}"))
                    with pytest.raises(StopAsyncIteration):
                        await asyncio.wait_for(stream.__anext__(), 30.0)
                    assert stream.status == "rejected"

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
class TestProtocolFuzz:
    GARBAGE = [
        b"\xff\xfe\x00garbage\n",
        b"not json at all\n",
        b"[1, 2, 3]\n",
        b'"just a string"\n',
        b"{}\n",
        b'{"type": 42}\n',
        b'{"type": "frobnicate"}\n',
        b'{"type": "match"}\n',  # server-only frame from a client
        b'{"type": "submit"}\n',  # no id
        b'{"type": "submit", "id": "x", "query": "nope"}\n',
        b'{"type": "submit", "id": "x", "query": {"pattern": 7}}\n',
        b'{"type": "submit", "id": "x", "query": {"pattern": "a("}}\n',  # syntax
        b'{"type": "submit", "id": "y", "query": {"pattern": "a", "strategy": "psychic"}}\n',
        b'{"type": "submit", "id": "z", "query": {"pattern": "a"},'
        b' "budget": {"max_lm_calls": "lots"}}\n',
        b'{"type": "cancel", "id": "ghost"}\n',
        b'{"type": "window", "id": "ghost", "n": 5}\n',
        b'{"type": "window", "id": "ghost", "n": "all"}\n',
    ]

    def test_malformed_frames_answered_not_fatal(self, model, tokenizer):
        """Every piece of garbage gets an error frame (or a rejected done
        for the well-formed-but-uncompilable submit); the session survives
        all of it, dies only on a version-mismatch hello, and the server
        serves the next client normally."""

        async def scenario():
            async with serving(model, tokenizer) as (server, service):
                reader, writer, _ = await raw_connect(server.host, server.port)
                for chunk in self.GARBAGE:
                    writer.write(chunk)
                await writer.drain()
                # 16 garbage lines draw error frames; the compilable-shape
                # submit with the bad regex draws an async rejected done.
                frames = await read_frames_until(
                    reader,
                    lambda _f, seen=[]: (
                        seen.append(_f)
                        or (sum(1 for f in seen if f["type"] == "error") >= 16
                            and any(f["type"] == "done" for f in seen))
                    ),
                )
                kinds = [f["type"] for f in frames]
                assert kinds.count("error") == 16
                dones = [f for f in frames if f["type"] == "done"]
                assert len(dones) == 1
                assert dones[0]["status"] == "rejected"
                assert "compile" in dones[0]["reason"]
                assert service.stats.frames_malformed >= 16

                # A version-mismatch hello is fatal: error, then close.
                writer.write(b'{"type": "hello", "version": 999}\n')
                await writer.drain()
                fatal = json.loads(await asyncio.wait_for(reader.readline(), 20.0))
                assert fatal["type"] == "error"
                assert "version" in fatal["message"]
                tail = await asyncio.wait_for(reader.readline(), 20.0)
                assert tail == b""  # server hung up
                writer.close()

                # server is still healthy: a fresh client round-trips
                async with await ServiceClient.connect(server.host, server.port) as client:
                    stream = await client.submit(SearchQuery("The cat"))
                    got = await stream.collect()
                    assert [m.text for m in got] == ["The cat"]

        asyncio.run(scenario())

    def test_oversized_frame_resync(self, model, tokenizer):
        """A frame past the limit is discarded up to the newline and the
        stream resyncs: the next valid frame still works."""

        async def scenario():
            async with serving(model, tokenizer, max_frame_bytes=2048) as (server, _service):
                reader, writer, hello = await raw_connect(server.host, server.port)
                assert hello["max_frame_bytes"] == 2048
                # Over the protocol limit but under the socket buffer limit.
                writer.write(b'{"type": "stats", "pad": "' + b"x" * 3000 + b'"}\n')
                # Far over the socket read limit: exercises LimitOverrun resync.
                writer.write(b"y" * 20000 + b"\n")
                writer.write(protocol.encode_frame({"type": "stats"}))
                await writer.drain()
                frames = await read_frames_until(reader, lambda f: f["type"] == "stats")
                kinds = [f["type"] for f in frames]
                assert kinds.count("error") == 2
                assert kinds[-1] == "stats"
                writer.close()

        asyncio.run(scenario())

    def test_mid_stream_disconnect_cancels_and_serves_on(self, model, tokenizer):
        slow = SlowModel(model, 0.02)

        async def scenario():
            async with serving(slow, tokenizer, progress_every=1) as (server, service):
                client = await ServiceClient.connect(server.host, server.port)
                stream = await client.submit(
                    SearchQuery("the( [a-z]{1,3}){1,8}"), max_results=50
                )
                for _ in range(200):
                    if stream.progress is not None:
                        break
                    await asyncio.sleep(0.02)
                assert stream.progress is not None
                # Abrupt drop: no bye, no cancel, just a dead socket.
                client._writer.transport.abort()
                client._reader_task.cancel()
                # The engine notices the closed session and cancels its work.
                for _ in range(200):
                    if service.stats.sessions_closed == 1 and not service._active:
                        break
                    await asyncio.sleep(0.05)
                assert service.stats.sessions_closed == 1
                # A new client is served normally afterwards.
                async with await ServiceClient.connect(server.host, server.port) as c2:
                    got = await (await c2.submit(SearchQuery("The dog"))).collect()
                    assert [m.text for m in got] == ["The dog"]

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
class TestDrainAndResume:
    QUERY = "the( [a-z]{1,3}){1,6}"
    MAX_RESULTS = 25

    def reference(self, model, tokenizer):
        scheduler = QueryScheduler(model, tokenizer)
        handle = scheduler.submit(
            SearchQuery(self.QUERY), budget=QueryBudget(max_results=self.MAX_RESULTS)
        )
        scheduler.run()
        scheduler.close()
        return handle.results

    def test_drain_checkpoints_inflight_and_resume_is_bit_identical(
        self, model, tokenizer, tmp_path
    ):
        reference = self.reference(model, tokenizer)
        assert len(reference) == self.MAX_RESULTS
        ckpt = str(tmp_path / "service.ckpt")
        slow = SlowModel(model, 0.02)

        async def interrupted():
            async with serving(
                slow, tokenizer, checkpoint_path=ckpt, progress_every=1
            ) as (server, service):
                async with await ServiceClient.connect(server.host, server.port) as client:
                    stream = await client.submit(
                        SearchQuery(self.QUERY), max_results=self.MAX_RESULTS
                    )
                    for _ in range(200):
                        if stream.progress is not None:
                            break
                        await asyncio.sleep(0.02)
                    assert stream.progress is not None
                    service.drain()  # SIGTERM semantics, in-process
                    with pytest.raises(StopAsyncIteration):
                        while True:
                            await asyncio.wait_for(stream.__anext__(), 30.0)
                    assert stream.status == "interrupted"
                    assert stream.reason == "draining"

        asyncio.run(interrupted())
        assert os.path.exists(ckpt)

        async def resumed():
            async with serving(
                model, tokenizer, checkpoint_path=ckpt, resume=True
            ) as (server, _service):
                async with await ServiceClient.connect(server.host, server.port) as client:
                    stream = await client.submit(
                        SearchQuery(self.QUERY), max_results=self.MAX_RESULTS
                    )
                    return await stream.collect()

        assert asyncio.run(resumed()) == reference

    def test_drain_without_checkpoint_finishes_inflight(self, model, tokenizer):
        reference = self.reference(model, tokenizer)
        slow = SlowModel(model, 0.01)

        async def scenario():
            async with serving(slow, tokenizer, progress_every=1) as (server, service):
                async with await ServiceClient.connect(server.host, server.port) as client:
                    stream = await client.submit(
                        SearchQuery(self.QUERY), max_results=self.MAX_RESULTS
                    )
                    for _ in range(200):
                        if stream.progress is not None:
                            break
                        await asyncio.sleep(0.02)
                    service.drain()
                    got = await stream.collect()
                    assert stream.status == "truncated"  # ran to its budget
                    assert got == reference
                    # and new submissions during the drain are refused
                    late = await client.submit(SearchQuery("The cat"))
                    with pytest.raises(StopAsyncIteration):
                        await asyncio.wait_for(late.__anext__(), 30.0)
                    assert late.status == "rejected"
                    assert late.reason == "draining"

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
_SIGTERM_DRIVER = """\
import asyncio, sys, time
sys.path.insert(0, {src!r})
sys.path.insert(0, {root!r})
from tests.conftest import build_model, build_tokenizer
from repro.lm.base import LanguageModel
from repro.service import SchedulerService, run_server

class SlowModel(LanguageModel):
    def __init__(self, inner, delay):
        self.inner = inner
        self.delay = delay
        self.vocab_size = inner.vocab_size
        self.eos_id = inner.eos_id
        self.max_sequence_length = inner.max_sequence_length
    def logprobs(self, context):
        time.sleep(self.delay)
        return self.inner.logprobs(context)
    def logprobs_batch(self, contexts):
        time.sleep(self.delay)
        return self.inner.logprobs_batch(contexts)

checkpoint, resume, delay = sys.argv[1], bool(int(sys.argv[2])), float(sys.argv[3])
tokenizer = build_tokenizer()
model = SlowModel(build_model(tokenizer), delay)
service = SchedulerService(
    model, tokenizer, checkpoint_path=checkpoint, resume=resume, progress_every=1
)

def ready(host, port):
    print(f"# listening {{host}}:{{port}}", file=sys.stderr, flush=True)

asyncio.run(run_server(service, "127.0.0.1", 0, ready=ready))
stats = service.stats_snapshot()
print(f"# service: interrupted={{stats['queries_interrupted']}} "
      f"checkpoints={{stats['checkpoints_written']}}", file=sys.stderr, flush=True)
"""


class TestSigterm:
    """The real signal path, end-to-end in a subprocess."""

    QUERY = "the( [a-z]{1,3}){1,6}"
    MAX_RESULTS = 25

    def _spawn(self, tmp_path, ckpt, resume, delay):
        script = tmp_path / "driver.py"
        script.write_text(
            _SIGTERM_DRIVER.format(src=SRC, root=os.path.dirname(SRC))
        )
        env = os.environ.copy()
        env["PYTHONPATH"] = SRC + os.pathsep + os.path.dirname(SRC)
        proc = subprocess.Popen(
            [sys.executable, str(script), ckpt, str(int(resume)), str(delay)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            cwd=os.path.dirname(SRC),
        )
        port = None
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            line = proc.stderr.readline().decode()
            if line.startswith("# listening"):
                port = int(line.rsplit(":", 1)[1])
                break
            assert proc.poll() is None, "server died before listening"
        assert port is not None, "server never announced its port"
        return proc, port

    def test_sigterm_checkpoints_and_restart_resumes_bit_identical(
        self, model, tokenizer, tmp_path
    ):
        reference = TestDrainAndResume().reference(model, tokenizer)
        ckpt = str(tmp_path / "sigterm.ckpt")

        # Round 1: slow server, SIGTERM lands mid-flight.
        proc, port = self._spawn(tmp_path, ckpt, resume=False, delay=0.03)
        try:

            async def interrupted():
                async with await ServiceClient.connect("127.0.0.1", port) as client:
                    stream = await client.submit(
                        SearchQuery(self.QUERY), max_results=self.MAX_RESULTS
                    )
                    for _ in range(400):
                        if stream.progress is not None:
                            break
                        await asyncio.sleep(0.02)
                    assert stream.progress is not None
                    os.kill(proc.pid, signal.SIGTERM)
                    try:
                        while True:
                            await asyncio.wait_for(stream.__anext__(), 60.0)
                    except (StopAsyncIteration, ServiceError):
                        pass
                    return stream.status

            status = asyncio.run(interrupted())
            assert status == "interrupted"
        finally:
            _out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err.decode()
        assert os.path.exists(ckpt)
        assert "interrupted=1" in err.decode()

        # Round 2: fast server resumes off the checkpoint; results must be
        # bit-identical to an uninterrupted run.
        proc, port = self._spawn(tmp_path, ckpt, resume=True, delay=0.0)
        try:

            async def resumed():
                async with await ServiceClient.connect("127.0.0.1", port) as client:
                    stream = await client.submit(
                        SearchQuery(self.QUERY), max_results=self.MAX_RESULTS
                    )
                    return await stream.collect()

            got = asyncio.run(resumed())
        finally:
            os.kill(proc.pid, signal.SIGTERM)
            _out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err.decode()
        assert got == reference


# ---------------------------------------------------------------------------
class TestProtocolUnit:
    def test_query_wire_round_trip(self):
        query = SearchQuery(
            "a[bc]{1,3}",
            prefix="a",
            top_k=5,
            strategy=__import__("repro").QuerySearchStrategy.RANDOM_SAMPLING,
            num_samples=7,
            require_eos=True,
            seed=3,
        )
        assert protocol.query_from_wire(protocol.query_to_wire(query)) == query

    def test_query_wire_defaults_are_elided(self):
        spec = protocol.query_to_wire(SearchQuery("ab"))
        assert spec == {"pattern": "ab", "strategy": "shortest", "tokenization": "all"}

    def test_decode_frame_rejections(self):
        for raw in (b"", b"\xff\n", b"nope\n", b"[]\n", b'{"type":"zap"}\n'):
            with pytest.raises(protocol.ProtocolError):
                protocol.decode_frame(raw)
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_frame(b"x" * 100, max_bytes=10)

    def test_match_wire_round_trip_is_lossless(self, model, tokenizer):
        query = SearchQuery("The ((cat)|(dog))")
        for match in search(model, tokenizer, query):
            wired = json.loads(json.dumps(protocol.match_to_wire(match)))
            assert protocol.match_from_wire(wired) == match
