"""Tests for query preprocessors (repro.core.preprocessors) — §3.4."""

from __future__ import annotations

import pytest

from repro.automata.transducer import replace_fst
from repro.core.preprocessors import (
    FilterPreprocessor,
    LevenshteinPreprocessor,
    SuffixFilterPreprocessor,
    TransducerPreprocessor,
)
from repro.regex import compile_dfa


class TestLevenshteinPreprocessor:
    def test_expands_language(self):
        prep = LevenshteinPreprocessor(1)
        out = prep.apply(compile_dfa("cat"))
        assert out.accepts_string("cut")
        assert out.accepts_string("cat")

    def test_zero_distance_identity(self):
        prep = LevenshteinPreprocessor(0)
        out = prep.apply(compile_dfa("ab|cd"))
        assert sorted(out.enumerate_strings()) == ["ab", "cd"]

    def test_applies_to_prefix_by_default(self):
        assert LevenshteinPreprocessor(1).applies_to_prefix


class TestFilterPreprocessor:
    def test_removes_exact_strings(self):
        prep = FilterPreprocessor(["the", "a"])
        out = prep.apply(compile_dfa("(the)|(a)|(cat)"))
        assert sorted(out.enumerate_strings()) == ["cat"]

    def test_empty_filter_is_identity(self):
        dfa = compile_dfa("ab")
        assert FilterPreprocessor([]).apply(dfa) is dfa

    def test_does_not_apply_to_prefix(self):
        assert not FilterPreprocessor(["x"]).applies_to_prefix

    def test_filter_of_absent_string_is_noop_language(self):
        out = FilterPreprocessor(["zebra"]).apply(compile_dfa("cat|dog"))
        assert sorted(out.enumerate_strings()) == ["cat", "dog"]


class TestSuffixFilterPreprocessor:
    def test_removes_completions_with_trailing_variants(self):
        dfa = compile_dfa("ctx ((the)|(cat))(\\.)?")
        prep = SuffixFilterPreprocessor(
            prefix="ctx ", forbidden=["the"], trailing=("", ".")
        )
        out = prep.apply(dfa)
        assert sorted(out.enumerate_strings()) == ["ctx cat", "ctx cat."]

    def test_keeps_other_prefixes_untouched(self):
        dfa = compile_dfa("((ctx )|(alt ))the")
        prep = SuffixFilterPreprocessor(prefix="ctx ", forbidden=["the"])
        out = prep.apply(dfa)
        assert sorted(out.enumerate_strings()) == ["alt the"]


class TestTransducerPreprocessor:
    def test_custom_rewrite(self):
        prep = TransducerPreprocessor(replace_fst({"c": "C"}, "catC"))
        out = prep.apply(compile_dfa("cat"))
        assert sorted(out.enumerate_strings()) == ["Cat", "cat"]


class TestChaining:
    def test_edits_then_filter(self):
        """Preprocessors compose in sequence as the paper describes."""
        dfa = compile_dfa("cat")
        expanded = LevenshteinPreprocessor(1).apply(dfa)
        filtered = FilterPreprocessor(["cat"]).apply(expanded)
        assert not filtered.accepts_string("cat")
        assert filtered.accepts_string("bat")

    def test_query_pipeline_applies_in_order(self, model, tokenizer):
        from repro.core.api import prepare
        from repro.core.query import SearchQuery

        query = SearchQuery(
            "The ((cat)|(dog))",
            preprocessors=(
                LevenshteinPreprocessor(1),
                FilterPreprocessor(["The cat", "The dog"]),
            ),
        )
        session = prepare(model, tokenizer, query, max_expansions=2000)
        texts = [r.text for r in session]
        # Every match is within 1 edit but never the original strings.
        assert texts
        assert "The cat" not in texts and "The dog" not in texts


class TestIntersectionPreprocessor:
    def test_conjunctive_constraint(self):
        from repro.core.preprocessors import IntersectionPreprocessor

        base = compile_dfa("(cat)|(tiger)|(ox)")
        out = IntersectionPreprocessor(".{3,5}").apply(base)
        assert sorted(out.enumerate_strings()) == ["cat", "tiger"]

    def test_disjoint_intersection_is_empty(self):
        from repro.core.preprocessors import IntersectionPreprocessor

        out = IntersectionPreprocessor("[0-9]+").apply(compile_dfa("[a-z]+"))
        assert out.is_empty()

    def test_in_query_pipeline(self, model, tokenizer):
        from repro.core.api import prepare
        from repro.core.preprocessors import IntersectionPreprocessor
        from repro.core.query import SearchQuery

        # Free word slot, intersected down to 3-letter completions.
        query = SearchQuery(
            "The [a-z]+",
            preprocessors=(IntersectionPreprocessor("The [a-z]{3}"),),
            top_k=20,
        )
        session = prepare(model, tokenizer, query, max_expansions=2000)
        texts = [r.text for r in session]
        assert texts
        assert all(len(t) == len("The ") + 3 for t in texts)
