"""Tests for the randomized traversal — §3.3 and Appendix C."""

from __future__ import annotations

import math
from collections import Counter

import numpy as np
import pytest

from repro.core.api import prepare
from repro.core.query import (
    QuerySearchStrategy,
    QueryString,
    QueryTokenizationStrategy,
    SearchQuery,
    SimpleSearchQuery,
)


def _random_query(pattern, prefix=None, n=50, seed=0, **kw):
    return SearchQuery(
        pattern,
        prefix=prefix,
        strategy=QuerySearchStrategy.RANDOM_SAMPLING,
        num_samples=n,
        seed=seed,
        **kw,
    )


class TestBasics:
    def test_yields_requested_samples(self, model, tokenizer):
        query = _random_query("The ((cat)|(dog))", n=25)
        results = list(prepare(model, tokenizer, query))
        assert len(results) == 25

    def test_samples_are_members(self, model, tokenizer):
        query = _random_query("The ((cat)|(dog))", n=30)
        for r in prepare(model, tokenizer, query):
            assert r.text in ("The cat", "The dog")

    def test_deterministic_given_seed(self, model, tokenizer):
        q = _random_query("The ((cat)|(dog))", n=10, seed=42)
        a = [r.text for r in prepare(model, tokenizer, q)]
        b = [r.text for r in prepare(model, tokenizer, q)]
        assert a == b

    def test_different_seeds_differ(self, model, tokenizer):
        a = [r.text for r in prepare(model, tokenizer, _random_query("The ((cat)|(dog))", n=20, seed=1))]
        b = [r.text for r in prepare(model, tokenizer, _random_query("The ((cat)|(dog))", n=20, seed=2))]
        assert a != b  # overwhelmingly likely

    def test_max_attempts_bounds_failures(self, model, tokenizer):
        # An unsatisfiable query under greedy decoding: everything pruned.
        query = _random_query("zqx", n=5, top_k=1)
        session = prepare(model, tokenizer, query, max_attempts=20)
        results = list(session)
        assert len(results) < 5
        assert session.stats.failed_attempts > 0


class TestDistribution:
    def test_sampling_follows_model_probabilities(self, model, tokenizer):
        """Sampled suffix frequencies track the model's conditional
        probabilities (the corpus has cat/dog sentences at similar
        rates)."""
        query = _random_query(
            "The ((cat)|(dog))", prefix="The", n=400, seed=7,
            tokenization=QueryTokenizationStrategy.CANONICAL,
        )
        counts = Counter(r.text for r in prepare(model, tokenizer, query))
        assert counts["The cat"] > 50
        assert counts["The dog"] > 50

    def test_eos_disambiguation_returns_short_strings(self, model, tokenizer):
        """Language a|aa|aaa: sampling must be able to stop early (EOS
        weight) rather than always extending."""
        query = _random_query("a{1,3}", n=60, seed=3)
        lengths = Counter(len(r.text) for r in prepare(model, tokenizer, query))
        assert lengths[1] > 0

    def test_prefix_sampled_uniformly(self, model, tokenizer):
        """The paper's example: prefixes {a, b, bb, bbb} must be sampled
        ~uniformly, not 50/50 on the first edge (§3.3)."""
        query = SimpleSearchQuery(
            query_string=QueryString("((a)|(b{1,3}))c", prefix_str="(a)|(b{1,3})"),
            search_strategy=QuerySearchStrategy.RANDOM_SAMPLING,
            num_samples=600,
            seed=11,
        )
        results = prepare(model, tokenizer, query)
        counts = Counter(r.prefix_text for r in results)
        total = sum(counts.values())
        for prefix in ("a", "b", "bb", "bbb"):
            assert abs(counts[prefix] / total - 0.25) < 0.08, counts

    def test_uniform_edge_sampling_is_biased(self, model, tokenizer):
        """Appendix C: uniform edge weights over-sample the lone short
        branch."""
        query = SimpleSearchQuery(
            query_string=QueryString("((a)|(b{1,3}))c", prefix_str="(a)|(b{1,3})"),
            search_strategy=QuerySearchStrategy.RANDOM_SAMPLING,
            num_samples=400,
            seed=11,
            uniform_edge_sampling=True,
        )
        counts = Counter(r.prefix_text for r in prepare(model, tokenizer, query))
        total = sum(counts.values())
        assert counts["a"] / total > 0.4


class TestCanonicalSampling:
    def test_canonical_samples_are_canonical(self, model, tokenizer):
        query = _random_query(
            "The ((cat)|(dog))", prefix="The", n=40,
            tokenization=QueryTokenizationStrategy.CANONICAL,
        )
        for r in prepare(model, tokenizer, query):
            assert r.canonical

    def test_all_encodings_eventually_noncanonical(self, model, tokenizer):
        """With ALL_TOKENS and no decoding filter, non-canonical paths have
        non-zero probability; over many samples at least one appears."""
        query = _random_query("The cat", n=300, seed=5)
        results = list(prepare(model, tokenizer, query))
        assert any(not r.canonical for r in results)


class TestTopKInteraction:
    def test_topk_restricts_random_choices(self, model, tokenizer):
        # Greedy sampling of the profession slot always picks the same one.
        query = _random_query(
            "The man was trained in ((engineering)|(computer science))",
            prefix="The man was trained in",
            n=20,
            top_k=1,
            tokenization=QueryTokenizationStrategy.CANONICAL,
        )
        texts = {r.text for r in prepare(model, tokenizer, query)}
        assert len(texts) == 1
