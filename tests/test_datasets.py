"""Tests for the synthetic dataset substrates (repro.datasets)."""

from __future__ import annotations

import re as _re

import pytest

from repro.analysis.text import edit_distance
from repro.datasets.corpus import DEFAULT_BIAS, BiasTable, build_corpus
from repro.datasets.lambada import build_lambada
from repro.datasets.lexicon import GENDERS, INSULTS, PROFESSIONS
from repro.datasets.pile import build_pile_shard
from repro.datasets.stopwords import STOP_WORDS, is_stop_word
from repro.datasets.webworld import WebWorld


class TestWebWorld:
    def test_deterministic(self):
        a, b = WebWorld.create(seed=5), WebWorld.create(seed=5)
        assert a.registered == b.registered
        assert a.corpus_lines() == b.corpus_lines()

    def test_oracle(self):
        web = WebWorld.create()
        some_url = next(iter(web.registered))
        assert web.url_exists(some_url)
        assert not web.url_exists("https://www.not-a-site.com/nope")

    def test_fabricated_never_registered(self):
        web = WebWorld.create()
        for url in web.fabricated:
            assert not web.url_exists(url)

    def test_popularity_covers_registered(self):
        web = WebWorld.create()
        assert {u for u, _ in web.popularity} == set(web.registered)

    def test_corpus_mentions_match_popularity(self):
        web = WebWorld.create(num_sites=5)
        text = "\n".join(web.corpus_lines())
        for url, count in web.popularity:
            # Count occurrences; bare-host URLs also appear inside their
            # pathed variants, so expect *at least* the configured count.
            assert text.count(url) >= count

    def test_top_urls_ranked(self):
        web = WebWorld.create()
        top = web.top_urls(3)
        counts = dict(web.popularity)
        assert counts[top[0]] >= counts[top[1]] >= counts[top[2]]

    def test_urls_match_paper_pattern(self):
        pattern = _re.compile(r"https://www\.[a-zA-Z0-9_#%-]+\.[a-zA-Z0-9_#%/-]+$")
        web = WebWorld.create()
        for url in list(web.registered) + list(web.fabricated):
            assert pattern.match(url), url


class TestBiasTable:
    def test_default_is_normalised(self):
        for gender in GENDERS:
            assert abs(sum(DEFAULT_BIAS.table[gender].values()) - 1.0) < 1e-9

    def test_counts_sum_exactly(self):
        for gender in GENDERS:
            counts = DEFAULT_BIAS.counts(gender, 397)
            assert sum(counts.values()) == 397

    def test_stereotypes_planted(self):
        t = DEFAULT_BIAS.table
        assert t["man"]["engineering"] > t["woman"]["engineering"]
        assert t["woman"]["medicine"] > t["man"]["medicine"]

    def test_invalid_distribution_rejected(self):
        with pytest.raises(ValueError):
            BiasTable({"man": {p: 0.0 for p in PROFESSIONS}, "woman": DEFAULT_BIAS.table["woman"]})

    def test_missing_profession_rejected(self):
        bad = {p: 1.0 / (len(PROFESSIONS) - 1) for p in PROFESSIONS[:-1]}
        with pytest.raises(ValueError):
            BiasTable({"man": bad, "woman": bad})


class TestCorpus:
    def test_deterministic(self):
        a = build_corpus(seed=3, general_count=50, bias_per_gender=20, toxic_repeats=2)
        b = build_corpus(seed=3, general_count=50, bias_per_gender=20, toxic_repeats=2)
        assert a.lines == b.lines

    def test_sections_partition_lines(self):
        corpus = build_corpus(seed=0, general_count=50, bias_per_gender=20, toxic_repeats=2)
        total = sum(len(v) for v in corpus.sections.values())
        assert total == corpus.num_lines

    def test_bias_counts_exact(self):
        corpus = build_corpus(seed=0, general_count=10, bias_per_gender=100, toxic_repeats=2)
        bias_lines = corpus.section("bias")
        men = [l for l in bias_lines if l.startswith("The man")]
        assert len(men) == 100
        eng = [l for l in men if "engineering" in l]
        assert len(eng) == DEFAULT_BIAS.counts("man", 100)["engineering"]

    def test_toxic_section_contains_all_insults(self):
        corpus = build_corpus(seed=0, general_count=10, bias_per_gender=10, toxic_repeats=2)
        text = "\n".join(corpus.section("toxic"))
        for insult in INSULTS:
            assert insult in text


class TestPileShard:
    @pytest.fixture(scope="class")
    def shard(self):
        corpus = build_corpus(seed=0, general_count=20, bias_per_gender=10, toxic_repeats=4)
        return build_pile_shard(corpus.section("toxic"), seed=0, benign_count=200)

    def test_provenance_aligned(self, shard):
        assert len(shard.lines) == len(shard.provenance)
        assert set(shard.provenance) <= {"verbatim", "edited", "unrelated", "benign"}

    def test_grep_finds_toxic_lines(self, shard):
        result = shard.grep("|".join(INSULTS))
        assert result.matches
        assert result.lines_scanned == len(shard.lines)
        for line in result.matches:
            assert any(ins in line for ins in INSULTS)

    def test_benign_lines_not_matched(self, shard):
        result = shard.grep("|".join(INSULTS))
        for line in result.matches:
            assert shard.provenance_of(line) != "benign"

    def test_edited_lines_one_edit_from_source(self, shard):
        corpus = build_corpus(seed=0, general_count=20, bias_per_gender=10, toxic_repeats=4)
        sources = set(corpus.section("toxic"))
        for line, label in zip(shard.lines, shard.provenance):
            if label == "edited":
                assert min(edit_distance(line, src) for src in sources) == 1
            if label == "verbatim":
                assert line in sources

    def test_edits_keep_insult_intact(self, shard):
        for line, label in zip(shard.lines, shard.provenance):
            if label == "edited":
                assert any(ins in line for ins in INSULTS), line

    def test_edit_lands_in_completion_region(self, shard):
        """The edit must be at or after the insult (prompt edits would be
        forgiven by prefix conditioning)."""
        corpus = build_corpus(seed=0, general_count=20, bias_per_gender=10, toxic_repeats=4)
        sources = sorted(set(corpus.section("toxic")))
        for line, label in zip(shard.lines, shard.provenance):
            if label != "edited":
                continue
            src = min(sources, key=lambda s: edit_distance(line, s))
            insult_start = min(line.find(i) for i in INSULTS if i in line)
            # Prompt region (before the insult) must match the source.
            assert line[:insult_start] == src[:insult_start]


class TestLambada:
    def test_deterministic(self):
        assert build_lambada(seed=1).items == build_lambada(seed=1).items

    def test_kind_counts(self):
        ds = build_lambada(num_easy=5, num_generic=2, num_multiword=3,
                           num_stopword=2, num_hard=1)
        assert len(ds.of_kind("easy")) == 5
        assert len(ds.of_kind("generic")) == 2
        assert len(ds.of_kind("multiword")) + len(ds.of_kind("multiword_donor")) == 3
        assert len(ds.of_kind("stopword")) == 2
        assert len(ds.of_kind("hard")) == 1

    def test_context_has_no_trailing_space(self):
        for item in build_lambada().items:
            assert not item.context.endswith(" ")

    def test_target_is_single_word(self):
        for item in build_lambada().items:
            assert _re.fullmatch("[a-zA-Z]+", item.target), item

    def test_stopword_items_contain_lowercase_her(self):
        for item in build_lambada().of_kind("stopword"):
            assert "her" in item.context.split()

    def test_test_passages_not_in_training(self):
        ds = build_lambada()
        training = set(ds.training_lines)
        for item in ds.items:
            assert item.context + " " + item.target not in training

    def test_easy_targets_appear_in_context(self):
        for item in build_lambada().of_kind("easy"):
            assert item.target in item.context


class TestStopwords:
    def test_common_words_present(self):
        for w in ["the", "a", "her", "it", "and"]:
            assert w in STOP_WORDS

    def test_content_words_absent(self):
        for w in ["kettle", "engineering", "Sarah"]:
            assert not is_stop_word(w)

    def test_case_insensitive(self):
        assert is_stop_word("The")
