"""Tests for the CLI, DOT export, result logging, and the case-fold
preprocessor."""

from __future__ import annotations

import json

import pytest

from repro.automata.visualize import dfa_to_dot, token_automaton_to_dot
from repro.cli import build_parser, main
from repro.core.api import prepare, search
from repro.core.logging import MatchWriter, read_matches, tee_matches
from repro.core.preprocessors import CaseFoldPreprocessor
from repro.core.query import SearchQuery
from repro.regex import compile_dfa


class TestDotExport:
    def test_char_dfa_dot(self):
        dot = dfa_to_dot(compile_dfa("ab|ac"))
        assert dot.startswith("digraph")
        assert "doublecircle" in dot
        assert 'label="a"' in dot
        assert dot.endswith("}")

    def test_parallel_edges_collapsed(self):
        dot = dfa_to_dot(compile_dfa("[a-z]"), max_edges_per_pair=3)
        assert "…" in dot  # 26 parallel edges truncated

    def test_space_rendered_visibly(self):
        dot = dfa_to_dot(compile_dfa("a b"))
        assert "Ġ" in dot

    def test_token_automaton_dot(self, model, tokenizer):
        from repro.core.compiler import GraphCompiler

        compiled = GraphCompiler(tokenizer).compile(
            SearchQuery("The cat", prefix="The")
        )
        dot = token_automaton_to_dot(compiled.token_automaton, tokenizer)
        assert "digraph" in dot
        assert "lightgrey" in dot  # prefix region shaded


class TestMatchLogging:
    def test_write_and_read_roundtrip(self, model, tokenizer, tmp_path):
        path = tmp_path / "matches.jsonl"
        with MatchWriter(path) as writer:
            for match in search(model, tokenizer, SearchQuery("The ((cat)|(dog))")):
                writer.write(match)
        loaded = read_matches(path)
        assert {m.text for m in loaded} == {"The cat", "The dog"}
        assert all(isinstance(m.tokens, tuple) for m in loaded)

    def test_records_are_json_lines(self, model, tokenizer, tmp_path):
        path = tmp_path / "m.jsonl"
        with MatchWriter(path) as writer:
            for match in search(model, tokenizer, SearchQuery("The cat")):
                writer.write(match)
        lines = path.read_text().splitlines()
        record = json.loads(lines[0])
        assert record["text"] == "The cat"
        assert "logprob" in record and "canonical" in record

    def test_tee_passes_through(self, model, tokenizer, tmp_path):
        writer = MatchWriter(tmp_path / "tee.jsonl")
        matches = list(
            tee_matches(search(model, tokenizer, SearchQuery("The ((cat)|(dog))")), writer)
        )
        writer.close()
        assert len(matches) == 2
        assert writer.count == 2

    def test_append_mode(self, model, tokenizer, tmp_path):
        path = tmp_path / "a.jsonl"
        for _ in range(2):
            with MatchWriter(path) as writer:
                for match in search(model, tokenizer, SearchQuery("The cat")):
                    writer.write(match)
        assert len(read_matches(path)) == 2


class TestCliLogRoundTrip:
    """Matches written via ``--log`` load back bit-identical through
    ``read_matches`` in both CLI modes (single query and multi-pattern
    scheduler), covering tokens, logprobs, and the canonical flag."""

    @staticmethod
    def _reference(patterns):
        from repro.experiments.common import get_environment

        env = get_environment(scale="test")
        out = []
        for pattern in patterns:
            out.extend(
                search(
                    env.model("xl"),
                    env.tokenizer,
                    SearchQuery(pattern, seed=0),
                    max_expansions=50_000,
                )
            )
        return out

    @staticmethod
    def _assert_identical(loaded, reference):
        assert len(loaded) == len(reference)
        for got, want in zip(loaded, reference):
            assert got.tokens == want.tokens
            assert got.text == want.text
            assert got.logprob == want.logprob
            assert got.total_logprob == want.total_logprob
            assert got.canonical == want.canonical
            assert got.prefix_text == want.prefix_text

    def test_single_query_mode(self, capsys, tmp_path):
        log = tmp_path / "single.jsonl"
        assert main(["query", "The ((cat)|(dog))", "--log", str(log)]) == 0
        capsys.readouterr()
        self._assert_identical(read_matches(log), self._reference(["The ((cat)|(dog))"]))

    def test_multi_pattern_scheduler_mode(self, capsys, tmp_path):
        log = tmp_path / "multi.jsonl"
        assert main(["query", "The cat", "The dog", "--log", str(log)]) == 0
        capsys.readouterr()
        self._assert_identical(read_matches(log), self._reference(["The cat", "The dog"]))


class TestCaseFold:
    def test_expands_cases(self):
        out = CaseFoldPreprocessor().apply(compile_dfa("ab"))
        for s in ["ab", "Ab", "aB", "AB"]:
            assert out.accepts_string(s), s
        assert not out.accepts_string("ac")

    def test_in_query_pipeline(self, model, tokenizer):
        query = SearchQuery("the cat", preprocessors=(CaseFoldPreprocessor(),))
        session = prepare(model, tokenizer, query, max_expansions=4000)
        texts = {r.text for r in session}
        assert "The cat" in texts  # the corpus casing is reachable


class TestCLI:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_command(self, capsys):
        code = main(["query", "The ((cat)|(dog))", "--max-matches", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "The cat" in out or "The dog" in out

    def test_query_random_strategy(self, capsys):
        code = main(
            ["query", "The ((cat)|(dog))", "--strategy", "random", "--samples", "4"]
        )
        assert code == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 4

    def test_query_with_log(self, capsys, tmp_path):
        log = tmp_path / "out.jsonl"
        code = main(["query", "The cat", "--log", str(log)])
        assert code == 0
        assert read_matches(log)

    def test_dot_command(self, capsys):
        code = main(["dot", "ab|ac"])
        assert code == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_dot_tokens_command(self, capsys):
        code = main(["dot", "The", "--tokens"])
        assert code == 0
        assert "digraph" in capsys.readouterr().out

    def test_experiment_encodings(self, capsys):
        code = main(["experiment", "encodings"])
        assert code == 0
        assert "non-canonical" in capsys.readouterr().out

    def test_experiment_bias(self, capsys):
        code = main(["experiment", "bias"])
        assert code == 0
        assert "chi2" in capsys.readouterr().out


class TestLintCommand:
    def test_lint_clean_pattern_exits_zero(self, capsys):
        code = main(["lint", "The cat", "--tokenization", "canonical"])
        assert code == 0
        err = capsys.readouterr().err
        assert "0 error" in err

    def test_lint_syntax_error_exits_nonzero(self, capsys):
        code = main(["lint", "[unclosed"])
        assert code == 1
        assert "RLM000" in capsys.readouterr().out

    def test_lint_json_payload(self, capsys):
        code = main(["lint", "The ((cat)|(dog))", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) == 1
        assert payload[0]["verdict"] in ("ok", "warning")
        assert "cost" in payload[0]

    def test_lint_multiple_patterns(self, capsys):
        code = main(["lint", "The cat", "[bad", "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        verdicts = {entry["query"]: entry["verdict"] for entry in payload}
        assert verdicts["[bad"] == "error"

    def test_lint_requires_target(self, capsys):
        assert main(["lint"]) == 2

    def test_lint_experiment_set(self, capsys):
        code = main(["lint", "--set", "memorization", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert any(entry["name"] == "memorization/urls" for entry in payload)

    def test_lint_json_pure_error_batch(self, capsys):
        # A batch where *every* query fails to parse must still emit one
        # valid JSON document (and exit 1), not crash half-way through.
        code = main(["lint", "[bad", "(worse[", "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) == 2
        assert all(entry["verdict"] == "error" for entry in payload)
        assert all(any(f["code"] == "RLM000" for f in entry["findings"]) for entry in payload)

    def test_lint_json_survives_compiler_crash(self, capsys, monkeypatch):
        from repro.core.compiler import GraphCompiler

        def boom(self, query):
            raise RuntimeError("synthetic compiler crash")

        monkeypatch.setattr(GraphCompiler, "compile", boom)
        code = main(["lint", "The cat", "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["verdict"] == "error"
        findings = payload[0]["findings"]
        assert any("synthetic compiler crash" in f["message"] for f in findings)

    def test_lint_set_flag_adds_cross_query_section(self, capsys):
        code = main(["lint", "--set", "bias", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list)
        cross = [entry for entry in payload if entry["name"] == "<cross-query>"]
        assert len(cross) == 1
        section = cross[0]["set"]
        assert set(section["queries"]) == {
            entry["name"] for entry in payload if entry["name"] != "<cross-query>"
        }
        assert len(section["matrix"]) == len(section["queries"])
        # The bias templates contain man/woman ⊂ (man|woman) pairs.
        assert section["subsumptions"]
        assert code in (0, 1)


class TestLintSetCommand:
    def test_requires_two_compilable_queries(self, capsys):
        assert main(["lint-set"]) == 2
        assert main(["lint-set", "The cat"]) == 2
        assert main(["lint-set", "The cat", "[bad"]) == 2

    def test_duplicates_drive_exit_code(self, capsys):
        code = main(["lint-set", "The ((cat)|(dog))", "The ((dog)|(cat))", "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["duplicate_groups"] == [["The ((cat)|(dog))", "The ((dog)|(cat))"]]
        assert any(f["code"] == "RLM007" for f in payload["findings"])

    def test_clean_set_exits_zero(self, capsys):
        code = main(["lint-set", "The cat", "The dog", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["duplicate_groups"] == []
        assert payload["skipped"] == []

    def test_skipped_queries_are_listed(self, capsys):
        code = main(["lint-set", "The cat", "The dog", "[bad", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["skipped"] == ["[bad"]
        assert len(payload["queries"]) == 2

    def test_text_rendering(self, capsys):
        code = main(["lint-set", "The cat", "The ((cat)|(dog))"])
        assert code == 0
        out = capsys.readouterr().out
        assert "duplicate group(s)" in out
        assert "RLM008" in out  # subset fires as a warning, not exit 1

    def test_state_budget_flag_degrades_to_unknown(self, capsys):
        code = main(
            ["lint-set", "The cat", "The ((cat)|(dog))", "--state-budget", "1", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["unknown_pairs"] == 1
        assert payload["subsumptions"] == {}
        assert any(f["code"] == "RLM011" for f in payload["findings"])

    def test_builtin_bias_set_has_no_duplicates(self, capsys):
        # The CI gate: built-in query sets must stay RLM007-free.
        code = main(["lint-set", "--set", "bias", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["duplicate_groups"] == []


class TestExplainCommand:
    def test_explain_text_output(self, capsys):
        code = main(["explain", "The ((cat)|(dog))"])
        out = capsys.readouterr().out
        assert code == 0
        assert "language" in out
        assert "verdict" in out

    def test_explain_json(self, capsys):
        code = main(["explain", "The cat", "--sequence-length", "8", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cost"]["horizon"] == 8

    def test_explain_error_exits_nonzero(self, capsys):
        code = main(["explain", "[unclosed"])
        assert code == 1


class TestDeterminismLinter:
    @pytest.fixture()
    def lint(self):
        import importlib.util
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[1]
        spec = importlib.util.spec_from_file_location(
            "lint_determinism", root / "tools" / "lint_determinism.py"
        )
        module = importlib.util.module_from_spec(spec)
        import sys

        sys.modules[spec.name] = module  # dataclasses resolve annotations here
        spec.loader.exec_module(module)
        return module

    def _codes(self, lint, tmp_path, source, name="repro/core/mod.py"):
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        return [f.code for f in lint.lint_file(path, tmp_path)]

    def test_unseeded_random_flagged(self, lint, tmp_path):
        codes = self._codes(
            lint, tmp_path, "import random\nr = random.Random()\n"
        )
        assert codes == ["DET001"]

    def test_seeded_random_ok(self, lint, tmp_path):
        codes = self._codes(
            lint, tmp_path, "import random\nr = random.Random(0)\n"
        )
        assert codes == []

    def test_global_random_call_flagged(self, lint, tmp_path):
        codes = self._codes(
            lint, tmp_path, "import random\nx = random.choice([1, 2])\n"
        )
        assert codes == ["DET001"]

    def test_legacy_numpy_random_flagged(self, lint, tmp_path):
        source = "import numpy as np\nx = np.random.rand(3)\n"
        assert self._codes(lint, tmp_path, source) == ["DET001"]
        ok = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert self._codes(lint, tmp_path, ok) == []

    def test_wall_clock_flagged_only_in_core(self, lint, tmp_path):
        source = "import time\nt = time.time()\n"
        assert self._codes(lint, tmp_path, source) == ["DET002"]
        assert self._codes(lint, tmp_path, source, name="repro/experiments/m.py") == []

    def test_monotonic_ok_in_core(self, lint, tmp_path):
        source = "import time\nt = time.monotonic()\n"
        assert self._codes(lint, tmp_path, source) == []

    def test_set_iteration_flagged(self, lint, tmp_path):
        assert self._codes(lint, tmp_path, "for x in {1, 2}:\n    pass\n") == ["DET003"]
        assert self._codes(lint, tmp_path, "xs = list(set([1, 2]))\n") == ["DET003"]
        assert self._codes(lint, tmp_path, "s = ','.join({'a', 'b'})\n") == ["DET003"]

    def test_sorted_set_ok(self, lint, tmp_path):
        assert self._codes(lint, tmp_path, "xs = sorted(set([1, 2]))\n") == []

    def test_pragma_suppresses(self, lint, tmp_path):
        source = "import random\nr = random.Random()  # det: ok\n"
        assert self._codes(lint, tmp_path, source) == []

    def test_syntax_error_reported_not_raised(self, lint, tmp_path):
        assert self._codes(lint, tmp_path, "def broken(:\n") == ["DET000"]

    def test_src_tree_is_clean(self, lint):
        import pathlib

        src = pathlib.Path(__file__).resolve().parents[1] / "src"
        assert lint.lint_paths([src]) == []

    def test_shm_alloc_without_cleanup_flagged(self, lint, tmp_path):
        source = (
            "from multiprocessing import shared_memory\n"
            "def alloc(n):\n"
            "    return shared_memory.SharedMemory(create=True, size=n)\n"
        )
        assert self._codes(lint, tmp_path, source) == ["DET004"]
        # Outside repro/core/ the allocation is not this linter's business.
        assert self._codes(lint, tmp_path, source, name="repro/experiments/m.py") == []

    def test_shm_alloc_with_cleanup_in_scope_ok(self, lint, tmp_path):
        source = (
            "from multiprocessing import shared_memory\n"
            "def alloc(n):\n"
            "    shm = shared_memory.SharedMemory(create=True, size=n)\n"
            "    shm.close()\n"
            "    shm.unlink()\n"
        )
        assert self._codes(lint, tmp_path, source) == []

    def test_shm_alloc_in_try_finally_ok(self, lint, tmp_path):
        source = (
            "from multiprocessing import shared_memory\n"
            "def alloc(n):\n"
            "    try:\n"
            "        shm = shared_memory.SharedMemory(create=True, size=n)\n"
            "    finally:\n"
            "        pass\n"
        )
        assert self._codes(lint, tmp_path, source) == []

    def test_shm_try_without_finally_still_flagged(self, lint, tmp_path):
        source = (
            "from multiprocessing import shared_memory\n"
            "def alloc(n):\n"
            "    try:\n"
            "        return shared_memory.SharedMemory(create=True, size=n)\n"
            "    except OSError:\n"
            "        return None\n"
        )
        assert self._codes(lint, tmp_path, source) == ["DET004"]

    def test_shm_direct_class_import_flagged(self, lint, tmp_path):
        source = (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def alloc(n):\n"
            "    return SharedMemory(create=True, size=n)\n"
        )
        assert self._codes(lint, tmp_path, source) == ["DET004"]

    def test_shm_pragma_suppresses(self, lint, tmp_path):
        source = (
            "from multiprocessing import shared_memory\n"
            "def alloc(n):\n"
            "    return shared_memory.SharedMemory(create=True, size=n)  # det: ok\n"
        )
        assert self._codes(lint, tmp_path, source) == []

    def test_cli_json_and_exit_codes(self, lint, tmp_path, capsys):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nx = random.random()\n")
        code = lint.main([str(tmp_path), "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["code"] == "DET001"
        assert lint.main([str(tmp_path / "missing")]) == 2
