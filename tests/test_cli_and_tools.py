"""Tests for the CLI, DOT export, result logging, and the case-fold
preprocessor."""

from __future__ import annotations

import json

import pytest

from repro.automata.visualize import dfa_to_dot, token_automaton_to_dot
from repro.cli import build_parser, main
from repro.core.api import prepare, search
from repro.core.logging import MatchWriter, read_matches, tee_matches
from repro.core.preprocessors import CaseFoldPreprocessor
from repro.core.query import SearchQuery
from repro.regex import compile_dfa


class TestDotExport:
    def test_char_dfa_dot(self):
        dot = dfa_to_dot(compile_dfa("ab|ac"))
        assert dot.startswith("digraph")
        assert "doublecircle" in dot
        assert 'label="a"' in dot
        assert dot.endswith("}")

    def test_parallel_edges_collapsed(self):
        dot = dfa_to_dot(compile_dfa("[a-z]"), max_edges_per_pair=3)
        assert "…" in dot  # 26 parallel edges truncated

    def test_space_rendered_visibly(self):
        dot = dfa_to_dot(compile_dfa("a b"))
        assert "Ġ" in dot

    def test_token_automaton_dot(self, model, tokenizer):
        from repro.core.compiler import GraphCompiler

        compiled = GraphCompiler(tokenizer).compile(
            SearchQuery("The cat", prefix="The")
        )
        dot = token_automaton_to_dot(compiled.token_automaton, tokenizer)
        assert "digraph" in dot
        assert "lightgrey" in dot  # prefix region shaded


class TestMatchLogging:
    def test_write_and_read_roundtrip(self, model, tokenizer, tmp_path):
        path = tmp_path / "matches.jsonl"
        with MatchWriter(path) as writer:
            for match in search(model, tokenizer, SearchQuery("The ((cat)|(dog))")):
                writer.write(match)
        loaded = read_matches(path)
        assert {m.text for m in loaded} == {"The cat", "The dog"}
        assert all(isinstance(m.tokens, tuple) for m in loaded)

    def test_records_are_json_lines(self, model, tokenizer, tmp_path):
        path = tmp_path / "m.jsonl"
        with MatchWriter(path) as writer:
            for match in search(model, tokenizer, SearchQuery("The cat")):
                writer.write(match)
        lines = path.read_text().splitlines()
        record = json.loads(lines[0])
        assert record["text"] == "The cat"
        assert "logprob" in record and "canonical" in record

    def test_tee_passes_through(self, model, tokenizer, tmp_path):
        writer = MatchWriter(tmp_path / "tee.jsonl")
        matches = list(
            tee_matches(search(model, tokenizer, SearchQuery("The ((cat)|(dog))")), writer)
        )
        writer.close()
        assert len(matches) == 2
        assert writer.count == 2

    def test_append_mode(self, model, tokenizer, tmp_path):
        path = tmp_path / "a.jsonl"
        for _ in range(2):
            with MatchWriter(path) as writer:
                for match in search(model, tokenizer, SearchQuery("The cat")):
                    writer.write(match)
        assert len(read_matches(path)) == 2


class TestCaseFold:
    def test_expands_cases(self):
        out = CaseFoldPreprocessor().apply(compile_dfa("ab"))
        for s in ["ab", "Ab", "aB", "AB"]:
            assert out.accepts_string(s), s
        assert not out.accepts_string("ac")

    def test_in_query_pipeline(self, model, tokenizer):
        query = SearchQuery("the cat", preprocessors=(CaseFoldPreprocessor(),))
        session = prepare(model, tokenizer, query, max_expansions=4000)
        texts = {r.text for r in session}
        assert "The cat" in texts  # the corpus casing is reachable


class TestCLI:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_command(self, capsys):
        code = main(["query", "The ((cat)|(dog))", "--max-matches", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "The cat" in out or "The dog" in out

    def test_query_random_strategy(self, capsys):
        code = main(
            ["query", "The ((cat)|(dog))", "--strategy", "random", "--samples", "4"]
        )
        assert code == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 4

    def test_query_with_log(self, capsys, tmp_path):
        log = tmp_path / "out.jsonl"
        code = main(["query", "The cat", "--log", str(log)])
        assert code == 0
        assert read_matches(log)

    def test_dot_command(self, capsys):
        code = main(["dot", "ab|ac"])
        assert code == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_dot_tokens_command(self, capsys):
        code = main(["dot", "The", "--tokens"])
        assert code == 0
        assert "digraph" in capsys.readouterr().out

    def test_experiment_encodings(self, capsys):
        code = main(["experiment", "encodings"])
        assert code == 0
        assert "non-canonical" in capsys.readouterr().out

    def test_experiment_bias(self, capsys):
        code = main(["experiment", "bias"])
        assert code == 0
        assert "chi2" in capsys.readouterr().out
